// Shared plumbing for the per-figure benchmark binaries.

#ifndef SEP2P_BENCH_BENCH_COMMON_H_
#define SEP2P_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/metrics.h"
#include "sim/parameters.h"

namespace sep2p::bench {

// --quick shrinks sweeps so a full `for b in build/bench/*` run stays
// fast; the defaults reproduce the paper-scale series.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

// --threads=N / --threads N caps the worker count for network build and
// trial execution; 0 (the default) means one per hardware thread.
// Results are bit-identical for every value — only wall-clock changes.
inline int ThreadsArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;
}

// --trace=FILE / --trace FILE: harnesses that support it record one
// representative trial and write FILE (Chrome trace-event JSON) plus
// FILE.jsonl (the strict interchange log `sep2p_cli check` consumes).
inline std::string TraceArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) return argv[i] + 8;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return "";
}

inline void PrintHeader(const char* figure, const char* claim,
                        const sim::Parameters& params) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper claim: %s\n", claim);
  std::printf("defaults: %s\n", params.ToString().c_str());
  std::printf("==============================================================\n\n");
}

inline std::string Num(double v, int precision = 3) {
  return sim::TablePrinter::Num(v, precision);
}

}  // namespace sep2p::bench

#endif  // SEP2P_BENCH_BENCH_COMMON_H_
