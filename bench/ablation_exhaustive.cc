// Methodology check (§4.1): the paper's simulator forces each node to
// be the Execution Setter, obtaining the exhaustive set of cases, and
// reports average, maximum and standard deviation. Same here: one SEP2P
// selection per (sampled) setter node with the point p pinned to it.

#include "bench/bench_common.h"
#include "sim/experiment.h"

using namespace sep2p;

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  bench::Observers obs(argc, argv);
  sim::Parameters params;
  params.threads = bench::ThreadsArg(argc, argv);
  params.n = quick ? 4000 : 20000;
  params.colluding_fraction = 0.01;
  params.actor_count = 32;
  params.cache_size = 512;
  // 0 = every node as setter; sampling keeps the quick run fast.
  const size_t sample = quick ? 1000 : 0;

  bench::PrintHeader(
      "Methodology — exhaustive Execution-Setter enumeration (avg/max/sd)",
      "costs are tightly concentrated: the max stays within a few k-table "
      "steps of the average across every possible setter",
      params);

  auto stats = sim::RunExhaustiveSetters(params, sample, obs.get());
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  sim::TablePrinter table({"metric", "avg", "max", "stddev"});
  table.AddRow({"verification cost (2k)", bench::Num(stats->verif_avg, 2),
                bench::Num(stats->verif_max, 0),
                bench::Num(stats->verif_stddev, 2)});
  table.AddRow({"setup crypto latency", bench::Num(stats->crypto_lat_avg, 2),
                bench::Num(stats->crypto_lat_max, 0),
                bench::Num(stats->crypto_lat_stddev, 2)});
  table.AddRow({"setup crypto work", bench::Num(stats->crypto_work_avg, 2),
                bench::Num(stats->crypto_work_max, 0),
                bench::Num(stats->crypto_work_stddev, 2)});
  table.AddRow({"setup msg latency", bench::Num(stats->msg_lat_avg, 2),
                bench::Num(stats->msg_lat_max, 0),
                bench::Num(stats->msg_lat_stddev, 2)});
  table.AddRow({"setup msg work", bench::Num(stats->msg_work_avg, 2),
                bench::Num(stats->msg_work_max, 0),
                bench::Num(stats->msg_work_stddev, 2)});
  table.Print();
  std::printf("\n(%d setter positions exercised)\n", stats->setters);
  if (!obs.Write()) return 1;
  return 0;
}
