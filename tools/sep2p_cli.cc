// sep2p_cli — command-line driver for the SEP2P library.
//
//   sep2p_cli select  [--n N] [--c FRAC] [--a A] [--seed S]
//                     [--overlay chord|can] [--ed25519] [--threads T]
//       Build a network, run one secure actor selection, verify it, and
//       print the verifiable actor list (also as its wire encoding).
//   sep2p_cli ktable  [--n N] [--c FRAC] [--alpha A]
//       Print the k-table for a configuration.
//   sep2p_cli probe   [--n N] [--c FRAC] [--alpha A] [--rounds R]
//       Colluder-concentration probe behind the alpha choice.
//   sep2p_cli demo [--trace FILE]
//       End-to-end run of all three paper use cases on one network.
//       --trace records the run and writes FILE (Chrome trace-event
//       JSON for Perfetto / chrome://tracing) plus FILE.jsonl (the
//       lossless log `sep2p_cli check` consumes).
//   sep2p_cli attack [--scenario NAME] [--rounds R] [--trace FILE]
//       Live adversary suite (src/attack/): per-scenario detection /
//       bias / cost-overhead table from the sweep harness, then one
//       narrated attacked execution judged by the detection oracle.
//       --trace writes that execution's trace (Chrome + JSONL).
//   sep2p_cli check PATH
//       Load a JSONL trace (or every *.jsonl in a directory, e.g. a
//       sweep's per-trial shards) and run the protocol invariant
//       checker on each; exits non-zero on a corrupt trace or any
//       violation.
//   sep2p_cli report PATH [--out FILE] [--csv FILE] [--folded FILE]
//                    [--top N]
//       Analyze one JSONL trace (or every *.jsonl in a directory, e.g. a
//       sweep's per-trial traces) into a markdown dashboard: per-phase
//       cost attribution, RPC latency percentiles, the critical path,
//       and the top retry offenders. Prints to stdout unless --out;
//       --csv writes the phase table, --folded the flamegraph stacks.
//   sep2p_cli report --cluster DIR [--merged FILE] [--out FILE] ...
//       Cluster mode: ingest the per-process trace shards of a live
//       run, merge them into ONE causally-consistent trace (HLC order,
//       obs/cluster.h), run the invariant checker on the merged whole
//       (non-zero exit on any violation), then render the same
//       dashboard with cross-process spans and critical path.
//       --merged writes the merged JSONL for later `check`/`report`.
//   sep2p_cli serve --cluster-index I --cluster-size P --port-base B
//                   [--drive] [--n N] [--seed S] [--ed25519]
//                   [--metrics FILE] [--trace FILE]
//       One node-daemon process of a live cluster: replicates the
//       deterministic world from the seed, hosts nodes i with
//       i % P == I over real TCP (net::TcpTransport), and serves the
//       identical protocol handlers a sim run dispatches in-process.
//       With --drive it also runs attested join + secure selection +
//       a distributed query against the cluster and prints CLUSTER OK.
//       Without it, the process serves until SIGTERM (graceful drain).
//   sep2p_cli cluster [--nodes P] [--n N] [--seed S] [--ed25519]
//                     [--port-base B] [--log-dir DIR] [--no-trace]
//       Spawns P local serve processes (child 0 drives), waits for the
//       driver, SIGTERMs the rest, and dumps the driver's log. Per-node
//       logs land in DIR (default cluster-logs/). Unless --no-trace,
//       every process records a trace shard DIR/shard-I.trace.jsonl —
//       merge + audit them with `sep2p_cli report --cluster DIR`.
//   sep2p_cli scrape (--port P | --port-base B --cluster-size P)
//                    [--host H] [--out FILE] [--timeout-ms T]
//       Fetch the live status document (process gauges + Prometheus
//       metrics) from running serve daemons over their control plane.
//   sep2p_cli soak [--nodes P] [--seconds D] [--n N] [--seed S]
//                  [--ed25519] [--port-base B] [--log-dir DIR]
//       Wall-clock soak harness: runs a traced cluster whose driver
//       keeps issuing queries for D seconds, scrapes every daemon once
//       a second while it runs, then merges the shards and audits the
//       merged trace. Prints SOAK OK when everything held.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "apps/proxy.h"
#include "apps/query.h"
#include "apps/sensing.h"
#include "attack/oracle.h"
#include "attack/scenario.h"
#include "attack/sweep.h"
#include "core/protocol_service.h"
#include "core/verification.h"
#include "core/wire.h"
#include "net/sim_network.h"
#include "net/tcp_transport.h"
#include "node/app_runtime.h"
#include "node/join.h"
#include "obs/checker.h"
#include "obs/cluster.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "util/hex.h"

using namespace sep2p;

namespace {

// The demo/cluster PDMS population: every third node is a commuter and
// everyone records a km_per_day attribute. Pure function of N, so every
// cluster process replicates identical profiles.
std::vector<node::PdmsNode> BuildDemoPdms(size_t n) {
  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < n; ++i) pdms.emplace_back(i);
  for (uint32_t i = 0; i < pdms.size(); ++i) {
    if (i % 3 == 0) pdms[i].AddConcept("commuter");
    pdms[i].SetAttribute("km_per_day", static_cast<double>(i % 40));
  }
  return pdms;
}

struct Flags {
  sim::Parameters params;
  double alpha = 1e-6;
  int rounds = 50;
  // Fault injection for the app rounds (demo command).
  double drop = 0;        // per-transmission loss probability
  double jitter_ms = 10;  // exponential latency jitter mean
  double crash = 0;       // per-request node-crash probability
  std::string scenario;   // attack: scenario name ("" = full table)
  std::string trace_path;  // demo: write Chrome trace here (+ .jsonl)
  std::string metrics_path;  // demo: Prometheus text here (+ .json)
};

bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double value = 0;
    if (arg == "--n" && next_value(&value)) {
      flags->params.n = static_cast<uint64_t>(value);
    } else if (arg == "--c" && next_value(&value)) {
      flags->params.colluding_fraction = value;
    } else if (arg == "--a" && next_value(&value)) {
      flags->params.actor_count = static_cast<int>(value);
    } else if (arg == "--seed" && next_value(&value)) {
      flags->params.seed = static_cast<uint64_t>(value);
    } else if (arg == "--cache" && next_value(&value)) {
      flags->params.cache_size = static_cast<size_t>(value);
    } else if (arg == "--alpha" && next_value(&value)) {
      flags->alpha = value;
      flags->params.alpha = value;
    } else if (arg == "--rounds" && next_value(&value)) {
      flags->rounds = static_cast<int>(value);
    } else if (arg == "--drop" && next_value(&value)) {
      flags->drop = value;
    } else if (arg == "--jitter-ms" && next_value(&value)) {
      flags->jitter_ms = value;
    } else if (arg == "--crash" && next_value(&value)) {
      flags->crash = value;
    } else if (arg == "--scenario") {
      if (i + 1 >= argc) return false;
      flags->scenario = argv[++i];
    } else if (arg == "--threads" && next_value(&value)) {
      flags->params.threads = static_cast<int>(value);
    } else if (arg == "--trace") {
      if (i + 1 >= argc) return false;
      flags->trace_path = argv[++i];
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) return false;
      flags->metrics_path = argv[++i];
    } else if (arg == "--ed25519") {
      flags->params.provider = sim::Parameters::ProviderKind::kEd25519;
    } else if (arg == "--overlay") {
      if (i + 1 >= argc) return false;
      std::string overlay = argv[++i];
      flags->params.overlay = overlay == "can"
                                  ? sim::Parameters::OverlayKind::kCan
                                  : sim::Parameters::OverlayKind::kChord;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int CmdSelect(const Flags& flags) {
  auto network = sim::Network::Build(flags.params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;
  std::printf("network: %s\n", flags.params.ToString().c_str());

  core::ProtocolContext ctx = net.context();
  core::SelectionProtocol selection(ctx);
  util::Rng rng(flags.params.seed ^ 0xc11);
  uint32_t trigger =
      static_cast<uint32_t>(rng.NextUint64(net.directory().size()));
  auto outcome = selection.Run(trigger, rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("trigger: node %u\nRND_T: %s\nsetter: node %u (k = %d, "
              "relocations = %d)\n",
              trigger, outcome->val.rnd_t.ToHex().c_str(),
              outcome->setter_index, outcome->val.k(),
              outcome->relocations);
  std::printf("actors:");
  for (uint32_t actor : outcome->actor_indices) std::printf(" %u", actor);
  std::printf("\nsetup: %s\n", outcome->cost.ToString().c_str());

  auto decision =
      core::VerifyBeforeDisclosure(ctx, outcome->val, nullptr, nullptr);
  std::printf("verification: %s (%.0f asymmetric ops)\n",
              decision.accepted ? "ACCEPTED" : "REJECTED",
              decision.cost.crypto_work);

  std::vector<uint8_t> encoded = core::wire::EncodeActorList(outcome->val);
  std::printf("wire encoding (%zu bytes): %s...\n", encoded.size(),
              util::ToHex(encoded.data(), std::min<size_t>(32, encoded.size()))
                  .c_str());
  auto decoded = core::wire::DecodeActorList(encoded);
  std::printf("decode + re-verify: %s\n",
              decoded.ok() && core::VerifyActorList(ctx, *decoded).ok()
                  ? "OK"
                  : "FAILED");
  return decision.accepted ? 0 : 1;
}

int CmdKtable(const Flags& flags) {
  uint64_t c = std::max<uint64_t>(
      1, static_cast<uint64_t>(flags.params.n *
                               flags.params.colluding_fraction));
  core::KTable table = core::KTable::Build(flags.params.n, c, flags.alpha);
  std::printf("N = %llu, C = %llu, alpha = %g\n",
              static_cast<unsigned long long>(flags.params.n),
              static_cast<unsigned long long>(c), flags.alpha);
  sim::TablePrinter printer({"k", "region size rs", "E[nodes in region]"});
  for (const core::KTable::Entry& entry : table.entries()) {
    printer.AddRow({std::to_string(entry.k),
                    sim::TablePrinter::Num(entry.rs, 9),
                    sim::TablePrinter::Num(entry.rs * flags.params.n, 1)});
  }
  printer.Print();
  return 0;
}

int CmdProbe(const Flags& flags) {
  auto probe = sim::ProbeAlpha(flags.params, flags.alpha, flags.rounds);
  if (!probe.ok()) {
    std::fprintf(stderr, "probe failed: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }
  std::printf("alpha = %g: k = %d, rs = %g\n", flags.alpha, probe->k,
              probe->rs);
  std::printf("max colluders in any colluder-centered region: %d "
              "(capture needs %d)\n",
              probe->max_colluders_seen, probe->k + 1);
  std::printf("captures: %d / %d colluder assignments\n", probe->breaches,
              probe->networks_tested);
  return 0;
}

int CmdDemo(const Flags& flags) {
  sim::Parameters params = flags.params;
  if (params.n > 5000) params.n = 2000;  // demo-sized
  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  sim::Network& net = **network;
  util::Rng rng(params.seed ^ 0xde40);

  std::vector<node::PdmsNode> pdms = BuildDemoPdms(net.directory().size());

  // All three use cases exchange data over one simulated message
  // network; --drop/--jitter-ms/--crash inject faults into it.
  net::LinkModel link;
  link.drop_probability = flags.drop;
  link.jitter_mean_us = static_cast<uint64_t>(flags.jitter_ms * 1000);
  net::SimNetwork simnet(net.directory().size(), link, net::RetryPolicy{},
                         params.seed ^ 0x5e7);
  simnet.set_step_crash_probability(flags.crash);
  obs::TraceRecorder recorder;
  if (!flags.trace_path.empty()) simnet.set_trace(&recorder);
  obs::MetricsRegistry metrics;
  if (!flags.metrics_path.empty()) {
    metrics.EnablePerNode(static_cast<uint32_t>(net.directory().size()));
    simnet.set_metrics(&metrics);
  }
  node::AppRuntime runtime(&simnet);
  std::printf("message network: drop=%.3f jitter=%.1fms crash=%.4f\n\n",
              flags.drop, flags.jitter_ms, flags.crash);

  std::printf("== use case 1: participatory sensing ==\n");
  apps::ParticipatorySensingApp sensing(&net, &pdms, &runtime);
  sensing.GenerateWorkload(200, 5, rng);
  auto round = sensing.RunRound(1, rng);
  if (!round.ok()) {
    std::fprintf(stderr, "sensing round failed: %s\n",
                 round.status().ToString().c_str());
    return 1;
  }
  std::printf("aggregated %llu readings from %d sources via %zu DAs "
              "(%d of %d delivered, %.1f virtual s)\n\n",
              static_cast<unsigned long long>(
                  round->aggregate.total_count()),
              round->sources, round->aggregators.size(),
              round->readings_delivered, round->readings_sent,
              round->round_latency_us / 1e6);

  std::printf("== use case 2: targeted diffusion ==\n");
  apps::ConceptIndex index(&net, &runtime);
  apps::DiffusionApp diffusion(&net, &pdms, &index, &runtime);
  auto published = diffusion.PublishAllProfiles(rng);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  auto diffused = diffusion.Diffuse(2, "commuter", "carpool offer", rng);
  if (!diffused.ok()) {
    std::fprintf(stderr, "diffusion failed: %s\n",
                 diffused.status().ToString().c_str());
    return 1;
  }
  std::printf("delivered to %zu matching nodes (%d offer failures, "
              "%.1f virtual s)\n\n",
              diffused->targets.size(), diffused->offer_failures,
              diffused->round_latency_us / 1e6);

  std::printf("== use case 3: distributed query ==\n");
  apps::QueryApp query(&net, &pdms, &index, &runtime);
  apps::QuerySpec spec;
  spec.profile_expression = "commuter";
  spec.attribute = "km_per_day";
  spec.aggregate = apps::Aggregate::kAvg;
  auto result = query.Execute(3, spec, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("AVG(km_per_day) over commuters = %.2f (%llu contributors, "
              "%d lost, %d DA failovers, %.1f virtual s)\n",
              result->value,
              static_cast<unsigned long long>(result->contributors),
              result->lost_contributions, result->da_failovers,
              result->round_latency_us / 1e6);

  const net::SimNetwork::Stats& stats = simnet.stats();
  std::printf("\nnetwork totals: %llu messages, %llu dropped, %llu "
              "retries, %llu timeouts, %llu step crashes\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.messages_dropped),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.step_crashes));

  if (!flags.trace_path.empty()) {
    simnet.FinalizeTrace();
    Status chrome = obs::WriteFile(flags.trace_path,
                                   obs::ToChromeTrace(recorder.trace()));
    Status jsonl = obs::WriteFile(flags.trace_path + ".jsonl",
                                  obs::ToJsonl(recorder.trace()));
    if (!chrome.ok() || !jsonl.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   (!chrome.ok() ? chrome : jsonl).ToString().c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (Chrome/Perfetto) + %s.jsonl\n",
                recorder.size(), flags.trace_path.c_str(),
                flags.trace_path.c_str());
  }
  if (!flags.metrics_path.empty()) {
    metrics.SetGauge("demo_n", static_cast<double>(net.directory().size()));
    Status prom =
        obs::WriteFile(flags.metrics_path, metrics.ToPrometheusText());
    Status json =
        obs::WriteFile(flags.metrics_path + ".json", metrics.ToJson());
    if (!prom.ok() || !json.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   (!prom.ok() ? prom : json).ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s (Prometheus text) + %s.json\n",
                flags.metrics_path.c_str(), flags.metrics_path.c_str());
  }
  return 0;
}

// Prints checker findings; returns whether every invariant held.
bool PrintCheckerReport(const obs::CheckerReport& report) {
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "VIOLATION: %s\n", violation.c_str());
  }
  if (report.suppressed > 0) {
    std::fprintf(stderr, "(%llu further violations suppressed)\n",
                 static_cast<unsigned long long>(report.suppressed));
  }
  return report.ok();
}

int CmdReport(int argc, char** argv) {
  std::string path, cluster_dir, merged_path;
  std::string out_path, csv_path, folded_path;
  obs::ReportOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--cluster" && i + 1 < argc) {
      cluster_dir = argv[++i];
    } else if (arg == "--merged" && i + 1 < argc) {
      merged_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--folded" && i + 1 < argc) {
      folded_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      options.top_n = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--", 0) != 0 && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "report: unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty() == cluster_dir.empty()) {
    std::fprintf(stderr,
                 "report: need exactly one of a trace PATH or "
                 "--cluster DIR\n");
    return 2;
  }

  obs::Report merged_report;
  const obs::Report* report = nullptr;
  Result<obs::Report> built = obs::Report{};
  if (!cluster_dir.empty()) {
    // Cluster mode: merge the per-process shards into one causal trace,
    // audit it whole, then analyze the merged result.
    auto merged = obs::LoadClusterTrace(cluster_dir);
    if (!merged.ok()) {
      std::fprintf(stderr, "report: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    const bool invariants_ok = PrintCheckerReport(obs::CheckTrace(*merged));
    std::printf("cluster: merged %s into %zu events "
                "(%u processes, digest %016llx), invariants %s\n",
                cluster_dir.c_str(), merged->events.size(),
                merged->meta.process_count,
                static_cast<unsigned long long>(obs::CausalDigest(*merged)),
                invariants_ok ? "OK" : "VIOLATED");
    if (!merged_path.empty()) {
      Status st = obs::WriteFile(merged_path, obs::ToJsonl(*merged));
      if (!st.ok()) {
        std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("cluster: merged trace -> %s\n", merged_path.c_str());
    }
    if (!invariants_ok) return 1;
    obs::AnalyzerOptions analyzer_options;
    analyzer_options.top_n = options.top_n;
    auto analysis = obs::Analyze(*merged, analyzer_options);
    if (!analysis.ok()) {
      std::fprintf(stderr, "report: %s\n",
                   analysis.status().ToString().c_str());
      return 1;
    }
    obs::MergeAnalysis(merged_report, *analysis);
    merged_report.sources.push_back(cluster_dir);
    report = &merged_report;
  } else {
    built = obs::BuildReport(path, options);
    if (!built.ok()) {
      std::fprintf(stderr, "report: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    report = &built.value();
  }
  std::string markdown = report->ToMarkdown(options);
  if (out_path.empty()) {
    std::fwrite(markdown.data(), 1, markdown.size(), stdout);
  } else {
    Status st = obs::WriteFile(out_path, markdown);
    if (!st.ok()) {
      std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("report: %zu trace(s) -> %s\n", report->trace_count,
                out_path.c_str());
  }
  if (!csv_path.empty()) {
    Status st = obs::WriteFile(csv_path, report->ToCsv());
    if (!st.ok()) {
      std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!folded_path.empty()) {
    Status st = obs::WriteFile(folded_path, report->ToFolded());
    if (!st.ok()) {
      std::fprintf(stderr, "report: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

int CheckOneTrace(const std::string& path) {
  auto text = obs::ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "check: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto trace = obs::FromJsonl(*text);
  if (!trace.ok()) {
    std::fprintf(stderr, "check: rejected: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  obs::CheckerReport report = obs::CheckTrace(*trace);
  std::printf("trace: %zu events, %llu sends, %llu delivers, %llu drops, "
              "%llu rpcs, %llu spans, %llu selections completed\n",
              trace->events.size(),
              static_cast<unsigned long long>(report.sends),
              static_cast<unsigned long long>(report.delivers),
              static_cast<unsigned long long>(report.drops),
              static_cast<unsigned long long>(report.rpcs),
              static_cast<unsigned long long>(report.spans),
              static_cast<unsigned long long>(report.selections_completed));
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "VIOLATION: %s\n", violation.c_str());
  }
  if (report.suppressed > 0) {
    std::fprintf(stderr, "(%llu further violations suppressed)\n",
                 static_cast<unsigned long long>(report.suppressed));
  }
  std::printf("invariants: %s\n", report.ok() ? "OK" : "VIOLATED");
  return report.ok() ? 0 : 1;
}

int CmdCheck(const char* path) {
  // One file or every *.jsonl in a directory (same globbing as report);
  // any rejected trace or violated invariant fails the whole run.
  auto files = obs::ListTraceFiles(path);
  if (!files.ok()) {
    std::fprintf(stderr, "check: %s\n", files.status().ToString().c_str());
    return 1;
  }
  int rc = 0;
  for (const std::string& file : files.value()) {
    if (files->size() > 1) std::printf("== %s ==\n", file.c_str());
    if (CheckOneTrace(file) != 0) rc = 1;
  }
  if (files->size() > 1) {
    std::printf("checked %zu traces: %s\n", files->size(),
                rc == 0 ? "all OK" : "FAILURES");
  }
  return rc;
}

// ---------------------------------------------------------------------
// Live cluster: `serve` runs one daemon process, `cluster` launches P
// of them on loopback.
// ---------------------------------------------------------------------

volatile std::sig_atomic_t g_stop = 0;
net::TcpTransport* g_transport = nullptr;

void OnStopSignal(int) {
  g_stop = 1;
  if (g_transport != nullptr) g_transport->RequestStop();
}

struct ServeFlags {
  sim::Parameters params;
  uint32_t cluster_index = 0;
  uint32_t cluster_size = 1;
  int port_base = 0;
  bool drive = false;
  // Soak mode: after the protocol pass, the driver keeps issuing live
  // queries until this much wall clock elapsed (0 = single pass).
  double drive_seconds = 0;
  std::string metrics_path;
  std::string trace_path;
};

bool ParseServeFlags(int argc, char** argv, int first, ServeFlags* flags) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double value = 0;
    if (arg == "--n" && next_value(&value)) {
      flags->params.n = static_cast<uint64_t>(value);
    } else if (arg == "--seed" && next_value(&value)) {
      flags->params.seed = static_cast<uint64_t>(value);
    } else if (arg == "--cache" && next_value(&value)) {
      flags->params.cache_size = static_cast<size_t>(value);
    } else if (arg == "--a" && next_value(&value)) {
      flags->params.actor_count = static_cast<int>(value);
    } else if (arg == "--ed25519") {
      flags->params.provider = sim::Parameters::ProviderKind::kEd25519;
    } else if (arg == "--cluster-index" && next_value(&value)) {
      flags->cluster_index = static_cast<uint32_t>(value);
    } else if (arg == "--cluster-size" && next_value(&value)) {
      flags->cluster_size = static_cast<uint32_t>(value);
    } else if (arg == "--port-base" && next_value(&value)) {
      flags->port_base = static_cast<int>(value);
    } else if (arg == "--drive") {
      flags->drive = true;
    } else if (arg == "--drive-seconds" && next_value(&value)) {
      flags->drive_seconds = value;
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) return false;
      flags->metrics_path = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) return false;
      flags->trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "serve: unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return flags->port_base != 0 &&
         flags->cluster_index < flags->cluster_size;
}

int CmdServe(int argc, char** argv) {
  ServeFlags flags;
  flags.params.n = 400;
  flags.params.cache_size = 128;
  flags.params.actor_count = 4;
  if (!ParseServeFlags(argc, argv, 2, &flags)) {
    std::fprintf(stderr,
                 "serve: need --port-base and --cluster-index < "
                 "--cluster-size\n");
    return 2;
  }

  // Every process replicates the whole deterministic world from the
  // seed — keys, certificates, directory, CA — so only messages need to
  // cross sockets.
  auto network = sim::Network::Build(flags.params);
  if (!network.ok()) {
    std::fprintf(stderr, "serve: build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;
  const uint32_t node_count =
      static_cast<uint32_t>(net.directory().size());

  net::TcpTransport::Options topt;
  topt.node_count = node_count;
  topt.process_count = flags.cluster_size;
  topt.process_index = flags.cluster_index;
  topt.listen_port =
      static_cast<uint16_t>(flags.port_base + flags.cluster_index);
  topt.seed = flags.params.seed ^ (0x7c1ULL + flags.cluster_index);
  net::TcpTransport transport(topt);
  for (uint32_t p = 0; p < flags.cluster_size; ++p) {
    if (p == flags.cluster_index) continue;
    transport.SetPeer(p, "127.0.0.1",
                      static_cast<uint16_t>(flags.port_base + p));
  }

  obs::MetricsRegistry metrics;
  transport.set_metrics(&metrics);
  obs::TraceRecorder recorder;
  if (!flags.trace_path.empty()) transport.set_trace(&recorder);

  // The resident server side: selection-protocol participants plus the
  // same app handlers a sim run registers — the identical translation
  // units answer on both transports.
  core::ProtocolContext ctx = net.context();
  core::ProtocolService::Options popt;
  popt.rng_seed =
      flags.params.seed ^ (0x5e21ULL + flags.cluster_index * 0x9e37ULL);
  core::ProtocolService service(ctx, transport, popt);

  std::vector<node::PdmsNode> pdms = BuildDemoPdms(node_count);
  node::AppRuntime runtime(&transport);
  apps::EnsureProxyHandlers(runtime);
  apps::ConceptIndex index(&net, &runtime);
  apps::DiffusionApp diffusion(&net, &pdms, &index, &runtime);
  apps::QueryApp query(&net, &pdms, &index, &runtime);

  g_transport = &transport;
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);

  Status started = transport.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serve: process %u/%u hosting %u nodes on port %u (%s)\n",
              flags.cluster_index, flags.cluster_size, node_count,
              transport.listen_port(),
              flags.params.provider == sim::Parameters::ProviderKind::kEd25519
                  ? "ed25519"
                  : "toy provider");
  std::fflush(stdout);

  Status peers = transport.WaitForPeers(30000);
  if (!peers.ok()) {
    std::fprintf(stderr, "serve: peers: %s\n", peers.ToString().c_str());
    transport.Stop();
    return 1;
  }
  std::printf("serve: all %u peers reachable\n", flags.cluster_size);
  std::fflush(stdout);

  if (!flags.drive) {
    // Resident participant: serve until SIGTERM, then drain in-flight
    // work and exit cleanly.
    while (g_stop == 0 && !transport.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    transport.Stop();
    // Shard outputs are written only AFTER Stop() joined every service
    // thread — the recorder is single-threaded by contract and the
    // exporter must not race late dispatches.
    if (!flags.trace_path.empty()) {
      transport.FinalizeTrace();
      Status chrome = obs::WriteFile(flags.trace_path,
                                     obs::ToChromeTrace(recorder.trace()));
      Status jsonl = obs::WriteFile(flags.trace_path + ".jsonl",
                                    obs::ToJsonl(recorder.trace()));
      if (!chrome.ok() || !jsonl.ok()) {
        std::fprintf(stderr, "trace write failed\n");
        return 1;
      }
      std::printf("trace: %zu events -> %s (+ .jsonl)\n", recorder.size(),
                  flags.trace_path.c_str());
    }
    if (!flags.metrics_path.empty()) {
      Status prom =
          obs::WriteFile(flags.metrics_path, metrics.ToPrometheusText());
      Status json =
          obs::WriteFile(flags.metrics_path + ".json", metrics.ToJson());
      if (!prom.ok() || !json.ok()) {
        std::fprintf(stderr, "metrics write failed\n");
        return 1;
      }
    }
    const net::Transport::Stats& stats = transport.stats();
    std::printf("serve: drained; %llu delivered, %llu sent\n",
                static_cast<unsigned long long>(stats.messages_delivered),
                static_cast<unsigned long long>(stats.messages_sent));
    return 0;
  }

  // --- Driver: the full protocol stack against the live cluster, the
  // same calls CmdDemo makes against the simulator.
  util::Rng rng(flags.params.seed ^ 0xc105ULL);
  int failures = 0;

  std::printf("== profiles ==\n");
  auto published = diffusion.PublishAllProfiles(rng);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.status().ToString().c_str());
    ++failures;
  } else {
    std::printf("published every profile to its metadata indexers\n");
  }

  std::printf("== attested join (§3.6) ==\n");
  node::JoinProtocol join(ctx, &transport);
  auto joined = join.Join(1, rng);
  if (!joined.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 joined.status().ToString().c_str());
    ++failures;
  } else {
    std::printf("node 1 joined: %zu validated cache entries "
                "(successor %u, predecessor %u)\n",
                joined->cache.size(), joined->successor,
                joined->predecessor);
  }

  std::printf("== secure selection (§3.4-3.5) ==\n");
  core::ProtocolContext sel_ctx = ctx;
  sel_ctx.actor_count = flags.params.actor_count;
  int restarts = 0;
  auto selected = runtime.RunSelection(sel_ctx, 2, rng, 8, &restarts);
  if (!selected.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selected.status().ToString().c_str());
    ++failures;
  } else {
    std::printf("selected %zu actors (k = %d, %d restarts):",
                selected->actor_indices.size(), selected->val.k(), restarts);
    for (uint32_t actor : selected->actor_indices) {
      std::printf(" %u", actor);
    }
    std::printf("\n");
  }

  std::printf("== distributed query (§5) ==\n");
  apps::QuerySpec spec;
  spec.profile_expression = "commuter";
  spec.attribute = "km_per_day";
  spec.aggregate = apps::Aggregate::kAvg;
  auto result = query.Execute(3, spec, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    ++failures;
  } else {
    std::printf("AVG(km_per_day) over commuters = %.2f "
                "(%llu contributors, %d lost, %d DA failovers, answer "
                "delivered: %s)\n",
                result->value,
                static_cast<unsigned long long>(result->contributors),
                result->lost_contributions, result->da_failovers,
                result->answer_delivered ? "yes" : "no");
    if (!result->answer_delivered || result->contributors == 0) ++failures;
  }

  if (flags.drive_seconds > 0) {
    // Soak: keep the cluster under live load for the requested wall
    // time so periodic scrapes observe a working system, not an idle
    // one.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            static_cast<int64_t>(flags.drive_seconds * 1000));
    uint64_t soak_rounds = 0;
    uint64_t soak_failures = 0;
    while (std::chrono::steady_clock::now() < deadline && g_stop == 0) {
      const uint32_t trigger =
          static_cast<uint32_t>(3 + soak_rounds % 5) % node_count;
      auto again = query.Execute(trigger, spec, rng);
      if (!again.ok() || !again->answer_delivered) ++soak_failures;
      ++soak_rounds;
    }
    std::printf("soak: %llu extra query rounds over %.1fs (%llu failed)\n",
                static_cast<unsigned long long>(soak_rounds),
                flags.drive_seconds,
                static_cast<unsigned long long>(soak_failures));
    if (soak_rounds == 0 || soak_failures > 0) ++failures;
  }

  const net::Transport::Stats& stats = transport.stats();
  std::printf("\nnetwork totals: %llu messages, %llu delivered, %llu "
              "retries, %llu timeouts, %llu rpc failures\n",
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.messages_delivered),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.timeouts),
              static_cast<unsigned long long>(stats.rpc_failures));

  // Stop FIRST: exporting the recorder while service threads can still
  // dispatch would race the single-threaded obs contract.
  transport.Stop();

  if (!flags.metrics_path.empty()) {
    metrics.SetGauge("cluster_nodes", static_cast<double>(node_count));
    metrics.SetGauge("cluster_processes",
                     static_cast<double>(flags.cluster_size));
    Status prom =
        obs::WriteFile(flags.metrics_path, metrics.ToPrometheusText());
    Status json =
        obs::WriteFile(flags.metrics_path + ".json", metrics.ToJson());
    if (!prom.ok() || !json.ok()) {
      std::fprintf(stderr, "metrics write failed\n");
      ++failures;
    } else {
      std::printf("metrics: %s (+ .json)\n", flags.metrics_path.c_str());
    }
  }
  if (!flags.trace_path.empty()) {
    transport.FinalizeTrace();
    Status chrome = obs::WriteFile(flags.trace_path,
                                   obs::ToChromeTrace(recorder.trace()));
    Status jsonl = obs::WriteFile(flags.trace_path + ".jsonl",
                                  obs::ToJsonl(recorder.trace()));
    if (!chrome.ok() || !jsonl.ok()) {
      std::fprintf(stderr, "trace write failed\n");
      ++failures;
    } else {
      std::printf("trace: %zu events -> %s (+ .jsonl)\n", recorder.size(),
                  flags.trace_path.c_str());
    }
  }

  if (failures == 0) std::printf("CLUSTER OK\n");
  std::fflush(stdout);
  return failures == 0 ? 0 : 1;
}

int CmdCluster(int argc, char** argv) {
  int processes = 5;
  int port_base = 0;
  bool trace_shards = true;
  std::string log_dir = "cluster-logs";
  std::vector<std::string> passthrough;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      processes = std::atoi(argv[++i]);
    } else if (arg == "--port-base" && i + 1 < argc) {
      port_base = std::atoi(argv[++i]);
    } else if (arg == "--log-dir" && i + 1 < argc) {
      log_dir = argv[++i];
    } else if (arg == "--no-trace") {
      trace_shards = false;
    } else if (arg == "--ed25519") {
      passthrough.push_back(arg);
    } else if ((arg == "--n" || arg == "--seed" || arg == "--cache" ||
                arg == "--a" || arg == "--drive-seconds") &&
               i + 1 < argc) {
      passthrough.push_back(arg);
      passthrough.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "cluster: unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (processes < 1 || processes > 64) {
    std::fprintf(stderr, "cluster: --nodes must be in [1, 64]\n");
    return 2;
  }
  if (port_base == 0) {
    // Deterministic per launcher instance, unlikely to collide across
    // concurrent CI jobs.
    port_base = 18000 + static_cast<int>(getpid() % 10000);
  }
  if (mkdir(log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cluster: mkdir %s: %s\n", log_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }

  std::printf("cluster: %d processes on 127.0.0.1:%d.., logs in %s/\n",
              processes, port_base, log_dir.c_str());
  std::fflush(stdout);

  std::vector<pid_t> pids;
  for (int i = 0; i < processes; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "cluster: fork: %s\n", std::strerror(errno));
      for (pid_t child : pids) kill(child, SIGKILL);
      return 1;
    }
    if (pid == 0) {
      // Child: log to its own file, exec serve.
      std::string log_path = log_dir + "/node-" + std::to_string(i) + ".log";
      int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
      std::vector<std::string> args = {
          "/proc/self/exe",  "serve",
          "--cluster-index", std::to_string(i),
          "--cluster-size",  std::to_string(processes),
          "--port-base",     std::to_string(port_base)};
      if (i == 0) args.push_back("--drive");
      if (trace_shards) {
        // Each process records its own shard; the .jsonl twin the
        // exporter writes is what `report --cluster` globs and merges.
        args.push_back("--trace");
        args.push_back(log_dir + "/shard-" + std::to_string(i) + ".trace");
      }
      for (const std::string& extra : passthrough) args.push_back(extra);
      std::vector<char*> argv_exec;
      for (std::string& a : args) argv_exec.push_back(a.data());
      argv_exec.push_back(nullptr);
      execv("/proc/self/exe", argv_exec.data());
      std::fprintf(stderr, "cluster: exec: %s\n", std::strerror(errno));
      _exit(127);
    }
    pids.push_back(pid);
  }

  // The driver (child 0) finishes the protocol run; the rest serve
  // until told to drain.
  int driver_status = 0;
  waitpid(pids[0], &driver_status, 0);
  for (size_t i = 1; i < pids.size(); ++i) kill(pids[i], SIGTERM);
  for (size_t i = 1; i < pids.size(); ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
  }

  // Surface the driver's log on the launcher's stdout.
  std::string driver_log = log_dir + "/node-0.log";
  if (FILE* f = std::fopen(driver_log.c_str(), "r")) {
    char buffer[4096];
    size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      std::fwrite(buffer, 1, got, stdout);
    }
    std::fclose(f);
  }

  const int exit_code =
      WIFEXITED(driver_status) ? WEXITSTATUS(driver_status) : 1;
  std::printf("cluster: driver exited %d; per-node logs in %s/\n",
              exit_code, log_dir.c_str());
  if (trace_shards) {
    std::printf("cluster: trace shards in %s/ — merge + audit with "
                "`sep2p_cli report --cluster %s`\n",
                log_dir.c_str(), log_dir.c_str());
  }
  return exit_code;
}

int CmdScrape(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string out_path;
  int port = 0;
  int port_base = 0;
  int cluster_size = 0;
  uint64_t timeout_ms = 3000;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--port-base" && i + 1 < argc) {
      port_base = std::atoi(argv[++i]);
    } else if (arg == "--cluster-size" && i + 1 < argc) {
      cluster_size = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "scrape: unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0 && (port_base == 0 || cluster_size <= 0)) {
    std::fprintf(stderr,
                 "scrape: need --port P or --port-base B --cluster-size P\n");
    return 2;
  }
  std::string all;
  int failures = 0;
  auto scrape_one = [&](int p) {
    auto text = net::ScrapeStatus(host, static_cast<uint16_t>(p), timeout_ms);
    if (!text.ok()) {
      std::fprintf(stderr, "scrape: %s:%d: %s\n", host.c_str(), p,
                   text.status().ToString().c_str());
      ++failures;
      return;
    }
    all += "# target " + host + ":" + std::to_string(p) + "\n";
    all += *text;
    all += "\n";
  };
  if (port != 0) {
    scrape_one(port);
  } else {
    for (int p = 0; p < cluster_size; ++p) scrape_one(port_base + p);
  }
  if (out_path.empty()) {
    std::fwrite(all.data(), 1, all.size(), stdout);
  } else {
    Status st = obs::WriteFile(out_path, all);
    if (!st.ok()) {
      std::fprintf(stderr, "scrape: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("scrape: -> %s\n", out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

// Wall-clock soak: a traced cluster under continuous query load, with
// one status scrape of every daemon per second, closed out by a merged
// causal audit — the live analogue of the sim sweep's checker gate.
int CmdSoak(int argc, char** argv) {
  int processes = 3;
  double seconds = 5;
  int port_base = 0;
  std::string log_dir = "soak-logs";
  std::vector<std::string> passthrough;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      processes = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--port-base" && i + 1 < argc) {
      port_base = std::atoi(argv[++i]);
    } else if (arg == "--log-dir" && i + 1 < argc) {
      log_dir = argv[++i];
    } else if (arg == "--ed25519") {
      passthrough.push_back(arg);
    } else if ((arg == "--n" || arg == "--seed" || arg == "--cache" ||
                arg == "--a") &&
               i + 1 < argc) {
      passthrough.push_back(arg);
      passthrough.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "soak: unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (processes < 1 || processes > 64 || seconds <= 0) {
    std::fprintf(stderr, "soak: --nodes in [1, 64], --seconds > 0\n");
    return 2;
  }
  if (port_base == 0) {
    port_base = 18000 + static_cast<int>(getpid() % 10000);
  }
  if (mkdir(log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "soak: mkdir %s: %s\n", log_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }
  std::printf("soak: %d processes on 127.0.0.1:%d.. for %.1fs, logs in "
              "%s/\n",
              processes, port_base, seconds, log_dir.c_str());
  std::fflush(stdout);

  std::vector<pid_t> pids;
  for (int i = 0; i < processes; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      std::fprintf(stderr, "soak: fork: %s\n", std::strerror(errno));
      for (pid_t child : pids) kill(child, SIGKILL);
      return 1;
    }
    if (pid == 0) {
      std::string log_path = log_dir + "/node-" + std::to_string(i) + ".log";
      int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        close(fd);
      }
      std::vector<std::string> args = {
          "/proc/self/exe",  "serve",
          "--cluster-index", std::to_string(i),
          "--cluster-size",  std::to_string(processes),
          "--port-base",     std::to_string(port_base),
          "--trace",         log_dir + "/shard-" + std::to_string(i) +
                                 ".trace"};
      if (i == 0) {
        args.push_back("--drive");
        args.push_back("--drive-seconds");
        args.push_back(std::to_string(seconds));
      }
      for (const std::string& extra : passthrough) args.push_back(extra);
      std::vector<char*> argv_exec;
      for (std::string& a : args) argv_exec.push_back(a.data());
      argv_exec.push_back(nullptr);
      execv("/proc/self/exe", argv_exec.data());
      std::fprintf(stderr, "soak: exec: %s\n", std::strerror(errno));
      _exit(127);
    }
    pids.push_back(pid);
  }

  // Scrape every daemon roughly once a second while the driver runs.
  uint64_t scrapes_attempted = 0;
  uint64_t scrapes_ok = 0;
  int driver_status = 0;
  for (;;) {
    const pid_t done = waitpid(pids[0], &driver_status, WNOHANG);
    if (done == pids[0]) break;
    std::this_thread::sleep_for(std::chrono::seconds(1));
    for (int p = 0; p < processes; ++p) {
      ++scrapes_attempted;
      auto text = net::ScrapeStatus(
          "127.0.0.1", static_cast<uint16_t>(port_base + p), 2000);
      if (text.ok() && text->find("sep2p_health") != std::string::npos) {
        ++scrapes_ok;
        // Keep the freshest snapshot per daemon next to its shard (the
        // CI artifact of what the status plane served while under load).
        (void)obs::WriteFile(
            log_dir + "/scrape-" + std::to_string(p) + ".prom", text.value());
      }
    }
  }
  for (size_t i = 1; i < pids.size(); ++i) kill(pids[i], SIGTERM);
  for (size_t i = 1; i < pids.size(); ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
  }
  const int driver_rc =
      WIFEXITED(driver_status) ? WEXITSTATUS(driver_status) : 1;
  std::printf("soak: driver exited %d; scrapes %llu/%llu ok\n", driver_rc,
              static_cast<unsigned long long>(scrapes_ok),
              static_cast<unsigned long long>(scrapes_attempted));

  // Final audit: merge the shards and run the checker on the whole.
  auto merged = obs::LoadClusterTrace(log_dir);
  if (!merged.ok()) {
    std::fprintf(stderr, "soak: merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  const bool invariants_ok = PrintCheckerReport(obs::CheckTrace(*merged));
  std::printf("soak: merged %zu events, digest %016llx, invariants %s\n",
              merged->events.size(),
              static_cast<unsigned long long>(obs::CausalDigest(*merged)),
              invariants_ok ? "OK" : "VIOLATED");
  const bool ok = driver_rc == 0 && invariants_ok && scrapes_ok > 0;
  if (ok) std::printf("SOAK OK\n");
  return ok ? 0 : 1;
}

// Live adversary suite (ROADMAP item 4): runs the attack scenarios of
// src/attack/ against one network, prints the detection-oracle report,
// then narrates one traced attacked execution (--trace writes it out
// for `sep2p_cli check` / `report`).
int CmdAttack(const Flags& flags) {
  std::vector<std::string> names;
  if (flags.scenario.empty()) {
    names = attack::ScenarioNames();
  } else {
    bool known = false;
    for (const std::string& name : attack::ScenarioNames()) {
      known |= name == flags.scenario;
    }
    if (!known) {
      std::fprintf(stderr, "unknown scenario: %s\nknown:",
                   flags.scenario.c_str());
      for (const std::string& name : attack::ScenarioNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    // Keep the honest baseline in front so cost overhead stays defined.
    if (flags.scenario != "none") names.push_back("none");
    names.push_back(flags.scenario);
  }

  const int trials = flags.rounds;
  std::printf("network: %s\nattack sweep: %d trials per scenario\n\n",
              flags.params.ToString().c_str(), trials);
  auto points =
      attack::RunAdversarySweep(flags.params, names, trials, nullptr);
  if (!points.ok()) {
    std::fprintf(stderr, "attack sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }
  sim::TablePrinter table({"scenario", "attempted", "detected",
                           "accepted", "succeeded", "avg corr.", "ideal",
                           "effect.", "cost ovh"});
  for (const attack::AdversaryPoint& p : *points) {
    table.AddRow({p.scenario, std::to_string(p.attempted),
                  std::to_string(p.detected), std::to_string(p.accepted),
                  std::to_string(p.succeeded),
                  sim::TablePrinter::Num(p.avg_corrupted, 2),
                  sim::TablePrinter::Num(p.ideal_corrupted, 2),
                  sim::TablePrinter::Num(p.effectiveness, 3),
                  sim::TablePrinter::Num(p.cost_overhead, 2)});
  }
  table.Print();

  // One narrated attacked execution, traced for the checker tooling.
  const std::string focus =
      flags.scenario.empty() ? "csar-grind" : flags.scenario;
  auto network = sim::Network::Build(flags.params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;
  core::ProtocolContext ctx = net.context();
  auto scenario = attack::MakeScenario(focus, ctx, net.ColluderIndices());
  obs::TraceRecorder recorder;
  recorder.meta().node_count =
      static_cast<uint32_t>(net.directory().size());
  util::Rng rng(flags.params.seed ^ 0xa77ac4);
  const uint32_t trigger =
      static_cast<uint32_t>(rng.NextUint64(net.directory().size()));
  auto outcome = scenario->Run(trigger, rng, &recorder, nullptr);
  if (!outcome.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  attack::Verdict verdict = attack::Judge(*outcome, &recorder.trace());
  std::printf("\nlive run of '%s' (trigger node %u):\n", focus.c_str(),
              trigger);
  std::printf("  coalition deviated: %s\n",
              outcome->attempted ? "yes" : "no opportunity");
  std::printf("  detected:           %s%s%s\n",
              verdict.detected ? "YES" : "no",
              verdict.signal.empty() ? "" : " — ",
              verdict.signal.c_str());
  std::printf("  verdict:            %s accepted, %d/%d colluders among "
              "accepted entries\n",
              outcome->accepted ? "list" : "nothing",
              outcome->corrupted_actors, outcome->actor_count);
  std::printf("  strikes=%d restarts=%d attempts=%d checker "
              "violations=%llu\n",
              outcome->strikes, outcome->restarts, outcome->attempts,
              static_cast<unsigned long long>(verdict.checker_violations));

  if (!flags.trace_path.empty()) {
    Status chrome = obs::WriteFile(flags.trace_path,
                                   obs::ToChromeTrace(recorder.trace()));
    Status jsonl = obs::WriteFile(flags.trace_path + ".jsonl",
                                  obs::ToJsonl(recorder.trace()));
    if (!chrome.ok() || !jsonl.ok()) {
      std::fprintf(stderr, "trace write failed\n");
      return 1;
    }
    std::printf("  trace: %zu events -> %s (+ .jsonl)\n", recorder.size(),
                flags.trace_path.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: sep2p_cli "
               "<select|ktable|probe|demo|attack|check|report|serve|"
               "cluster|scrape|soak> [flags]\n"
               "flags: --n N --c FRAC --a A --seed S --cache SIZE\n"
               "       --alpha A --rounds R --overlay chord|can --ed25519\n"
               "       --threads T (0 = one per hardware thread)\n"
               "       --drop P --jitter-ms M --crash P (demo fault "
               "injection)\n"
               "       --trace FILE (demo: Chrome trace to FILE, JSONL to "
               "FILE.jsonl)\n"
               "       --metrics FILE (demo: Prometheus text to FILE, "
               "JSON to FILE.json)\n"
               "attack: sep2p_cli attack [--scenario NAME] [--rounds R]\n"
               "        [--trace FILE]  (live adversary suite + detection "
               "oracle;\n        omit --scenario for the full table)\n"
               "check: sep2p_cli check PATH (run the invariant checker "
               "on one\n"
               "       trace.jsonl or every *.jsonl in a directory)\n"
               "report: sep2p_cli report PATH [--out FILE] [--csv FILE]\n"
               "        [--folded FILE] [--top N]  (PATH = trace.jsonl or "
               "a directory of them)\n"
               "        sep2p_cli report --cluster DIR [--merged FILE] "
               "merges the\n"
               "        per-process shards of a live run, audits the "
               "merged trace,\n        and reports on the whole cluster\n"
               "serve: sep2p_cli serve --cluster-index I --cluster-size P\n"
               "       --port-base B [--drive] [--drive-seconds D] "
               "[--n N]\n"
               "       [--seed S] [--ed25519] [--trace FILE] "
               "[--metrics FILE]\n"
               "cluster: sep2p_cli cluster [--nodes P] [--n N] [--seed S]\n"
               "         [--ed25519] [--port-base B] [--log-dir DIR] "
               "[--no-trace]\n"
               "scrape: sep2p_cli scrape (--port P | --port-base B "
               "--cluster-size P)\n"
               "        [--host H] [--out FILE] [--timeout-ms T]\n"
               "soak: sep2p_cli soak [--nodes P] [--seconds D] [--n N]\n"
               "      [--seed S] [--ed25519] [--port-base B] "
               "[--log-dir DIR]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string command = argv[1];
  // `check` and `report` take a file path, not the network flags.
  if (command == "check") {
    if (argc != 3) {
      Usage();
      return 2;
    }
    return CmdCheck(argv[2]);
  }
  if (command == "report") {
    if (argc < 3) {
      Usage();
      return 2;
    }
    return CmdReport(argc, argv);
  }
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "cluster") return CmdCluster(argc, argv);
  if (command == "scrape") return CmdScrape(argc, argv);
  if (command == "soak") return CmdSoak(argc, argv);

  Flags flags;
  flags.params.n = 2000;
  flags.params.cache_size = 128;
  flags.params.actor_count = 8;
  if (!ParseFlags(argc, argv, 2, &flags)) {
    Usage();
    return 2;
  }

  if (command == "select") return CmdSelect(flags);
  if (command == "ktable") return CmdKtable(flags);
  if (command == "probe") return CmdProbe(flags);
  if (command == "demo") return CmdDemo(flags);
  if (command == "attack") return CmdAttack(flags);
  Usage();
  return 2;
}
