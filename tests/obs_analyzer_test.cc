// Trace analytics: exact per-phase attribution, critical path, retry
// offenders, folded stacks, and the report pipeline — including the
// reconciliation contract: phase rows of a real traced sweep sum
// EXACTLY to the trace totals, the checker tallies, and the metrics
// registry metering the same run.

#include "obs/analyzer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/checker.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace sep2p {
namespace {

using obs::Analysis;
using obs::Counter;
using obs::Event;
using obs::EventKind;
using obs::PhaseRow;
using obs::Trace;
using obs::TraceRecorder;

// A selection-shaped trace with a known critical path:
//
//   selection [0..300]
//     vrand [0..100]:   rpc 1 (0..100), one attempt, 1 send/deliver
//     (self) [100..300]: rpc 2 (100..300), timeout + retry, 2 attempts
Trace MakeSyntheticTrace(uint64_t* out_sel_span = nullptr) {
  TraceRecorder rec;
  uint64_t clock = 0;
  rec.BindClock(&clock);
  rec.meta().node_count = 4;
  rec.meta().max_attempts = 3;

  const uint64_t sel = rec.OpenSpan(0, "selection");
  if (out_sel_span != nullptr) *out_sel_span = sel;
  const uint64_t vr = rec.OpenSpan(0, "vrand");

  Event e;
  e.t_us = 0;
  e.kind = EventKind::kRpcBegin;
  e.node = 0;
  e.peer = 1;
  e.rpc = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 0;
  e.kind = EventKind::kAttempt;
  e.rpc = 1;
  e.value = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 0;
  e.kind = EventKind::kSend;
  e.node = 0;
  e.peer = 1;
  e.rpc = 1;
  e.seq = 1;
  e.value = 64;  // payload bytes
  rec.Record(e);
  e = Event{};
  e.t_us = 50;
  e.kind = EventKind::kDeliver;
  e.node = 1;
  e.peer = 0;
  e.rpc = 1;
  e.seq = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 100;
  e.kind = EventKind::kRpcEnd;
  e.rpc = 1;
  e.value = 1;
  rec.Record(e);
  clock = 100;
  rec.CloseSpan(vr);

  e = Event{};
  e.t_us = 100;
  e.kind = EventKind::kRpcBegin;
  e.node = 0;
  e.peer = 2;
  e.rpc = 2;
  rec.Record(e);
  e = Event{};
  e.t_us = 100;
  e.kind = EventKind::kAttempt;
  e.rpc = 2;
  e.value = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 200;
  e.kind = EventKind::kTimeout;
  e.rpc = 2;
  e.value = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 200;
  e.kind = EventKind::kRetry;
  e.rpc = 2;
  e.value = 2;
  rec.Record(e);
  e = Event{};
  e.t_us = 200;
  e.kind = EventKind::kAttempt;
  e.rpc = 2;
  e.value = 2;
  rec.Record(e);
  e = Event{};
  e.t_us = 300;
  e.kind = EventKind::kRpcEnd;
  e.rpc = 2;
  e.value = 2;
  rec.Record(e);
  clock = 300;
  rec.CloseSpan(sel);
  return rec.trace();
}

const PhaseRow* FindPhase(const Analysis& a, const std::string& name) {
  for (const PhaseRow& row : a.phases) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

TEST(AnalyzerTest, PhaseAttributionIsExactOnSyntheticTrace) {
  auto analysis = obs::Analyze(MakeSyntheticTrace());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const Analysis& a = *analysis;

  EXPECT_EQ(a.total_events, 15u);
  EXPECT_EQ(a.spans, 2u);
  EXPECT_EQ(a.duration_us, 300u);
  EXPECT_EQ(a.sends, 1u);
  EXPECT_EQ(a.delivers, 1u);
  EXPECT_EQ(a.bytes_sent, 64u);
  EXPECT_EQ(a.rpcs, 2u);
  EXPECT_EQ(a.attempts, 3u);
  EXPECT_EQ(a.timeouts, 1u);
  EXPECT_EQ(a.retries, 1u);
  EXPECT_DOUBLE_EQ(a.retry_amplification, 1.5);

  ASSERT_EQ(a.phases.size(), 2u);
  const PhaseRow* sel = FindPhase(a, "selection");
  const PhaseRow* vr = FindPhase(a, "vrand");
  ASSERT_NE(sel, nullptr);
  ASSERT_NE(vr, nullptr);

  // Events are charged to their DIRECT enclosing span only: rpc 1 lives
  // entirely in "vrand", rpc 2 in "selection", nothing double-counts.
  EXPECT_EQ(vr->events, 5u);
  EXPECT_EQ(vr->rpcs, 1u);
  EXPECT_EQ(vr->attempts, 1u);
  EXPECT_EQ(vr->sends, 1u);
  EXPECT_EQ(vr->delivers, 1u);
  EXPECT_EQ(vr->bytes_sent, 64u);
  EXPECT_EQ(vr->total_us, 100u);
  EXPECT_EQ(vr->self_us, 100u);
  EXPECT_EQ(vr->rpc_time_us, 100u);

  EXPECT_EQ(sel->events, 6u);
  EXPECT_EQ(sel->rpcs, 1u);
  EXPECT_EQ(sel->attempts, 2u);
  EXPECT_EQ(sel->timeouts, 1u);
  EXPECT_EQ(sel->retries, 1u);
  EXPECT_EQ(sel->total_us, 300u);
  EXPECT_EQ(sel->self_us, 200u);  // minus vrand's 100
  EXPECT_EQ(sel->rpc_time_us, 200u);
  EXPECT_DOUBLE_EQ(sel->retry_amplification, 2.0);

  // Per-phase rows sum exactly to the totals.
  uint64_t phase_events = 0, phase_rpcs = 0, phase_attempts = 0;
  for (const PhaseRow& row : a.phases) {
    phase_events += row.events;
    phase_rpcs += row.rpcs;
    phase_attempts += row.attempts;
  }
  EXPECT_EQ(phase_events, a.total_events - 2 * a.spans);
  EXPECT_EQ(phase_rpcs, a.rpcs);
  EXPECT_EQ(phase_attempts, a.attempts);

  EXPECT_EQ(a.rpc_latency.count(), 2u);
  EXPECT_EQ(a.rpc_latency.min(), 100u);
  EXPECT_EQ(a.rpc_latency.max(), 200u);

  ASSERT_EQ(a.top_retries.size(), 1u);
  EXPECT_EQ(a.top_retries[0].rpc, 2u);
  EXPECT_EQ(a.top_retries[0].attempts, 2u);
  EXPECT_EQ(a.top_retries[0].client, 0u);
  EXPECT_EQ(a.top_retries[0].server, 2u);
  EXPECT_FALSE(a.top_retries[0].failed);
  EXPECT_EQ(a.top_retries[0].phase, "selection");
}

TEST(AnalyzerTest, CriticalPathChainsAbuttingIntervals) {
  auto analysis = obs::Analyze(MakeSyntheticTrace());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  const Analysis& a = *analysis;

  EXPECT_EQ(a.critical_span, "selection");
  EXPECT_EQ(a.critical_span_us, 300u);
  // rpc 1 (0..100) ends exactly where rpc 2 (100..300) begins: the
  // backwards walk reconstructs both, in chronological order.
  ASSERT_EQ(a.critical_path.size(), 2u);
  EXPECT_EQ(a.critical_path[0].rpc, 1u);
  EXPECT_EQ(a.critical_path[0].start_us, 0u);
  EXPECT_EQ(a.critical_path[0].end_us, 100u);
  EXPECT_EQ(a.critical_path[1].rpc, 2u);
  EXPECT_EQ(a.critical_path[1].start_us, 100u);
  EXPECT_EQ(a.critical_path[1].end_us, 300u);
  EXPECT_EQ(a.critical_path_us, 300u);
}

TEST(AnalyzerTest, FoldedStacksCarryAncestryAndSelfTime) {
  auto analysis = obs::Analyze(MakeSyntheticTrace());
  ASSERT_TRUE(analysis.ok());
  std::vector<std::pair<std::string, uint64_t>> expected = {
      {"selection", 200}, {"selection;vrand", 100}};
  EXPECT_EQ(analysis->folded_stacks, expected);
}

TEST(AnalyzerTest, RejectsStructurallyInvalidTraces) {
  {  // Span end without a begin.
    Trace t;
    Event e;
    e.kind = EventKind::kSpanEnd;
    e.span = 7;
    t.events.push_back(e);
    EXPECT_FALSE(obs::Analyze(t).ok());
  }
  {  // Attempt before its rpc-begin.
    Trace t;
    Event e;
    e.kind = EventKind::kAttempt;
    e.rpc = 5;
    t.events.push_back(e);
    EXPECT_FALSE(obs::Analyze(t).ok());
  }
  {  // Span id reuse.
    Trace t;
    Event e;
    e.kind = EventKind::kSpanBegin;
    e.span = 1;
    e.detail = "a";
    t.events.push_back(e);
    t.events.push_back(e);
    EXPECT_FALSE(obs::Analyze(t).ok());
  }
  {  // Event attributed to a span that was never opened.
    Trace t;
    Event e;
    e.kind = EventKind::kMark;
    e.span = 9;
    t.events.push_back(e);
    EXPECT_FALSE(obs::Analyze(t).ok());
  }
}

// ---------------------------------------------- real traced sweep

class TracedSweepTest : public ::testing::Test {
 protected:
  static constexpr int kTrials = 4;

  void RunObservedSweep(std::vector<obs::TraceRecorder>* recorders,
                        obs::MetricsRegistry* metrics) {
    sim::Parameters params;
    params.n = 800;
    params.actor_count = 8;
    params.cache_size = 128;
    std::vector<sim::MessageFailureSetting> settings(1);
    settings[0].drop_probability = 0.05;
    settings[0].jitter_mean_us = 10'000;

    sim::SweepObservers observers;
    observers.trace_trials = kTrials;  // trace EVERY metered trial
    observers.recorders = recorders;
    observers.metrics = metrics;
    auto points = sim::RunMessageFailureSweep(params, settings, kTrials,
                                              /*max_attempts=*/25,
                                              &observers);
    ASSERT_TRUE(points.ok()) << points.status().ToString();
    ASSERT_EQ(recorders->size(), static_cast<size_t>(kTrials));
  }
};

TEST_F(TracedSweepTest, PhaseRowsReconcileWithTotalsCheckerAndMetrics) {
  std::vector<obs::TraceRecorder> recorders;
  obs::MetricsRegistry metrics;
  RunObservedSweep(&recorders, &metrics);

  uint64_t sends = 0, delivers = 0, drops = 0, timeouts = 0, retries = 0,
           signatures = 0, route_hops = 0, bytes_sent = 0;
  std::map<std::string, uint64_t> phase_sends;
  for (const obs::TraceRecorder& rec : recorders) {
    auto analysis = obs::Analyze(rec.trace());
    ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
    const Analysis& a = *analysis;

    // Per-phase rows sum EXACTLY to the trace totals: nothing is
    // double-counted up the span ancestry and nothing is lost.
    uint64_t row_events = 0, row_sends = 0, row_delivers = 0,
             row_drops = 0, row_timeouts = 0, row_retries = 0,
             row_rpcs = 0, row_attempts = 0, row_signatures = 0,
             row_routes = 0, row_route_hops = 0, row_bytes = 0;
    for (const PhaseRow& row : a.phases) {
      row_events += row.events;
      row_sends += row.sends;
      row_delivers += row.delivers;
      row_drops += row.drops;
      row_timeouts += row.timeouts;
      row_retries += row.retries;
      row_rpcs += row.rpcs;
      row_attempts += row.attempts;
      row_signatures += row.signatures;
      row_routes += row.routes;
      row_route_hops += row.route_hops;
      row_bytes += row.bytes_sent;
      if (row.name != "(top)") phase_sends[row.name] += row.sends;
    }
    EXPECT_EQ(row_events, a.total_events - 2 * a.spans);
    EXPECT_EQ(row_sends, a.sends);
    EXPECT_EQ(row_delivers, a.delivers);
    EXPECT_EQ(row_drops, a.drops);
    EXPECT_EQ(row_timeouts, a.timeouts);
    EXPECT_EQ(row_retries, a.retries);
    EXPECT_EQ(row_rpcs, a.rpcs);
    EXPECT_EQ(row_attempts, a.attempts);
    EXPECT_EQ(row_signatures, a.signatures);
    EXPECT_EQ(row_routes, a.routes);
    EXPECT_EQ(row_route_hops, a.route_hops);
    EXPECT_EQ(row_bytes, a.bytes_sent);

    // The invariant checker replays the same log; its tallies must
    // agree event for event.
    obs::CheckerReport check = obs::CheckTrace(rec.trace());
    EXPECT_TRUE(check.ok());
    EXPECT_EQ(a.sends, check.sends);
    EXPECT_EQ(a.delivers, check.delivers);
    EXPECT_EQ(a.drops, check.drops);
    EXPECT_EQ(a.timeouts, check.timeouts);
    EXPECT_EQ(a.retries, check.retries);
    EXPECT_EQ(a.rpcs, check.rpcs);
    EXPECT_EQ(a.spans, check.spans);
    EXPECT_EQ(a.routes, check.routes);
    EXPECT_EQ(a.route_hops, check.route_hops);

    sends += a.sends;
    delivers += a.delivers;
    drops += a.drops;
    timeouts += a.timeouts;
    retries += a.retries;
    signatures += a.signatures;
    route_hops += a.route_hops;
    bytes_sent += a.bytes_sent;
  }
  EXPECT_GT(sends, 0u);
  EXPECT_GT(signatures, 0u);

  // Every trial was both traced and metered, so the merged metrics
  // snapshot must reproduce the trace event counts exactly.
  EXPECT_EQ(metrics.counter(Counter::kMessagesSent), sends);
  EXPECT_EQ(metrics.counter(Counter::kMessagesDelivered), delivers);
  EXPECT_EQ(metrics.counter(Counter::kMessagesDropped), drops);
  EXPECT_EQ(metrics.counter(Counter::kTimeouts), timeouts);
  EXPECT_EQ(metrics.counter(Counter::kRetries), retries);
  EXPECT_EQ(metrics.counter(Counter::kRouteHops), route_hops);
  EXPECT_EQ(metrics.counter(Counter::kBytesSent), bytes_sent);
  EXPECT_EQ(metrics.counter(Counter::kTrials),
            static_cast<uint64_t>(kTrials));

  // And per phase: obs::Span pushes the same name on both the recorder
  // and the registry, so phase rows agree between the two pipelines.
  for (const auto& [name, value] : phase_sends) {
    EXPECT_EQ(metrics.phase_counter(name, Counter::kMessagesSent), value)
        << name;
  }
}

TEST_F(TracedSweepTest, MeteredSweepIsBitIdenticalToPlainForAnyThreads) {
  sim::Parameters params;
  params.n = 800;
  params.actor_count = 8;
  params.cache_size = 128;
  std::vector<sim::MessageFailureSetting> settings(1);
  settings[0].drop_probability = 0.05;
  settings[0].jitter_mean_us = 10'000;

  auto sweep = [&](int threads, bool observed)
      -> std::tuple<std::string, std::string, std::string> {
    sim::Parameters p = params;
    p.threads = threads;
    std::vector<obs::TraceRecorder> recorders;
    obs::MetricsRegistry metrics;
    sim::SweepObservers observers;
    observers.trace_trials = 2;
    observers.recorders = &recorders;
    observers.metrics = &metrics;
    auto points = sim::RunMessageFailureSweep(
        p, settings, /*trials=*/4, /*max_attempts=*/25,
        observed ? &observers : nullptr);
    EXPECT_TRUE(points.ok());
    std::string table;
    for (const sim::MessageFailurePoint& pt : *points) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n",
                    pt.first_try_success_rate, pt.avg_retries,
                    pt.avg_replacements, pt.restart_rate, pt.give_up_rate,
                    pt.p50_latency_ms, pt.p99_latency_ms);
      table += line;
    }
    std::string traces;
    for (const obs::TraceRecorder& rec : recorders) {
      traces += obs::ToJsonl(rec.trace());
    }
    return {table, metrics.ToJson(), traces};
  };

  // Metering + tracing is strictly passive: the sweep table of an
  // observed run matches the plain run bit for bit...
  const auto plain = sweep(1, false);
  const auto observed1 = sweep(1, true);
  EXPECT_EQ(std::get<0>(observed1), std::get<0>(plain));
  EXPECT_FALSE(std::get<2>(observed1).empty());
  // ...and the table, the merged metrics snapshot and the recorded
  // traces are identical for any --threads value.
  for (int threads : {4, 8}) {
    const auto t = sweep(threads, true);
    EXPECT_EQ(std::get<0>(t), std::get<0>(observed1)) << threads;
    EXPECT_EQ(std::get<1>(t), std::get<1>(observed1)) << threads;
    EXPECT_EQ(std::get<2>(t), std::get<2>(observed1)) << threads;
  }
}

// ------------------------------------------------- report pipeline

TEST(ReportTest, MergeAnalysisSumsTotalsAndPhases) {
  auto analysis = obs::Analyze(MakeSyntheticTrace());
  ASSERT_TRUE(analysis.ok());

  obs::Report report;
  MergeAnalysis(report, *analysis);
  MergeAnalysis(report, *analysis);

  EXPECT_EQ(report.trace_count, 2u);
  EXPECT_EQ(report.total_events, 30u);
  EXPECT_EQ(report.rpcs, 4u);
  EXPECT_EQ(report.attempts, 6u);
  EXPECT_DOUBLE_EQ(report.retry_amplification, 1.5);
  EXPECT_EQ(report.trace_durations_us,
            (std::vector<uint64_t>{300, 300}));
  EXPECT_EQ(report.rpc_latency.count(), 4u);
  ASSERT_EQ(report.phases.size(), 2u);
  EXPECT_EQ(report.phases[0].name, "selection");
  EXPECT_EQ(report.phases[0].rpcs, 2u);
  EXPECT_EQ(report.phases[0].total_us, 600u);
  EXPECT_EQ(report.top_retries.size(), 2u);
  // The critical path stays the FIRST trace's chain.
  EXPECT_EQ(report.critical_span, "selection");
  EXPECT_EQ(report.critical_path.size(), 2u);
  EXPECT_EQ(report.critical_path_us, 300u);
  // Folded stacks merge by stack string.
  std::vector<std::pair<std::string, uint64_t>> expected = {
      {"selection", 400}, {"selection;vrand", 200}};
  EXPECT_EQ(report.folded_stacks, expected);
}

TEST(ReportTest, RenderersEmitTheDashboardSections) {
  auto analysis = obs::Analyze(MakeSyntheticTrace());
  ASSERT_TRUE(analysis.ok());
  obs::Report report;
  MergeAnalysis(report, *analysis);

  const std::string md = report.ToMarkdown();
  for (const char* section :
       {"# SEP2P trace report", "## Totals", "## Phase attribution",
        "## RPC latency", "## Critical path", "## Top retry offenders",
        "## Folded stacks"}) {
    EXPECT_NE(md.find(section), std::string::npos) << section;
  }
  EXPECT_NE(md.find("selection"), std::string::npos);
  EXPECT_NE(md.find("vrand"), std::string::npos);

  const std::string csv = report.ToCsv();
  EXPECT_EQ(csv.rfind("phase,spans,events,total_us,self_us,rpc_time_us,",
                      0),
            0u);
  EXPECT_NE(csv.find("\nselection,1,6,300,200,200,"), std::string::npos)
      << csv;

  EXPECT_NE(report.ToFolded().find("selection;vrand 100"),
            std::string::npos);
}

TEST(ReportTest, BuildReportAggregatesADirectoryOfTraces) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "sep2p_report_test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));

  const Trace trace = MakeSyntheticTrace();
  const std::string jsonl = obs::ToJsonl(trace);
  ASSERT_TRUE(obs::WriteFile((dir / "run.trial1.jsonl").string(), jsonl)
                  .ok());
  ASSERT_TRUE(obs::WriteFile((dir / "run.jsonl").string(), jsonl).ok());
  // Non-trace files are ignored.
  ASSERT_TRUE(obs::WriteFile((dir / "notes.txt").string(), "x").ok());

  auto report = obs::BuildReport(dir.string());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->trace_count, 2u);
  // Sorted by name: run.jsonl before run.trial1.jsonl.
  ASSERT_EQ(report->sources.size(), 2u);
  EXPECT_EQ(fs::path(report->sources[0]).filename(), "run.jsonl");
  EXPECT_EQ(fs::path(report->sources[1]).filename(), "run.trial1.jsonl");
  EXPECT_EQ(report->rpcs, 4u);

  // A malformed trace fails the whole report, naming the file.
  ASSERT_TRUE(
      obs::WriteFile((dir / "zzz.jsonl").string(), "not json\n").ok());
  auto broken = obs::BuildReport(dir.string());
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().ToString().find("zzz.jsonl"),
            std::string::npos);

  // An empty directory is an error, not an empty report.
  const fs::path empty = dir / "empty";
  ASSERT_TRUE(fs::create_directories(empty));
  EXPECT_FALSE(obs::BuildReport(empty.string()).ok());

  fs::remove_all(dir);
}

}  // namespace
}  // namespace sep2p
