#include "crypto/sha256.h"

#include <gtest/gtest.h>
#include <openssl/sha.h>

#include <string>

#include "util/hex.h"
#include "util/rng.h"

namespace sep2p::crypto {
namespace {

std::string HexOf(const Digest& d) {
  return util::ToHex(d.data(), d.size());
}

// FIPS 180-4 / NIST CAVP known-answer tests.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(Sha256Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf(Sha256Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha256Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(HexOf(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.Update(msg.substr(0, split));
    ctx.Update(msg.substr(split));
    EXPECT_EQ(ctx.Finish(), Sha256Hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 ctx;
  ctx.Update("first message");
  ctx.Finish();
  ctx.Reset();
  ctx.Update("abc");
  EXPECT_EQ(HexOf(ctx.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Cross-check the from-scratch implementation against OpenSSL on random
// inputs of every length class (sub-block, block-aligned, multi-block).
TEST(Sha256Test, MatchesOpenSslOnRandomInputs) {
  util::Rng rng(4242);
  for (size_t len : {0u, 1u, 31u, 32u, 55u, 56u, 63u, 64u, 65u, 127u, 128u,
                     1000u, 4096u, 10000u}) {
    std::vector<uint8_t> data(len);
    rng.FillBytes(data.data(), data.size());
    Digest ours = Sha256Hash(data);
    unsigned char theirs[32];
    SHA256(data.data(), data.size(), theirs);
    EXPECT_EQ(0, memcmp(ours.data(), theirs, 32)) << "len " << len;
  }
}

TEST(Sha256Test, OutputLooksUniform) {
  // Bit-balance sanity check over many hashes (each output bit should be
  // set about half the time) — the property the paper's imposed node
  // placement relies on.
  constexpr int kHashes = 2000;
  int bit_counts[256] = {};
  for (int i = 0; i < kHashes; ++i) {
    Digest d = Sha256Hash("node-" + std::to_string(i));
    for (int bit = 0; bit < 256; ++bit) {
      if (d[bit / 8] & (1 << (bit % 8))) ++bit_counts[bit];
    }
  }
  for (int bit = 0; bit < 256; ++bit) {
    EXPECT_NEAR(bit_counts[bit], kHashes / 2, 150) << "bit " << bit;
  }
}

}  // namespace
}  // namespace sep2p::crypto
