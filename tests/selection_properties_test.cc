// Property-style parameterized sweeps over the SEP2P selection: the
// protocol's contracts must hold across network sizes, collusion levels
// and actor counts, not just at the defaults.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "core/selection.h"
#include "core/verification.h"
#include "dht/region.h"
#include "tests/test_util.h"

namespace sep2p::core {
namespace {

// (network size, colluding fraction, actor count)
using SweepParam = std::tuple<uint64_t, double, int>;

class SelectionSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    auto [n, c_fraction, actor_count] = GetParam();
    sim::Parameters params;
    params.n = n;
    params.colluding_fraction = c_fraction;
    params.actor_count = actor_count;
    params.cache_size = std::max<size_t>(4 * actor_count, n / 25);
    params.seed = 1000 + n + actor_count;
    auto network = sim::Network::Build(params);
    ASSERT_TRUE(network.ok());
    network_ = std::move(network.value());
    ctx_ = network_->context();
  }

  std::unique_ptr<sim::Network> network_;
  ProtocolContext ctx_;
};

TEST_P(SelectionSweepTest, ContractHoldsForSeveralTriggers) {
  SelectionProtocol protocol(ctx_);
  util::Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    uint32_t trigger =
        static_cast<uint32_t>(rng.NextUint64(network_->directory().size()));
    auto outcome = protocol.Run(trigger, rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

    // A actors, all distinct, all legitimate for R3.
    EXPECT_EQ(outcome->val.actor_count(), ctx_.actor_count);
    std::set<uint32_t> unique(outcome->actor_indices.begin(),
                              outcome->actor_indices.end());
    EXPECT_EQ(unique.size(), outcome->actor_indices.size());
    dht::Region r3 = dht::Region::Centered(
        outcome->val.SetterPoint().ring_pos(), ctx_.rs3);
    for (uint32_t actor : outcome->actor_indices) {
      EXPECT_TRUE(r3.Contains(network_->directory().pos(actor)));
    }

    // Verification accepts at exactly 2k ops; k within the k-table.
    auto cost = VerifyActorList(ctx_, outcome->val);
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
    EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * outcome->val.k());
    EXPECT_GE(outcome->val.k(), 2);
    EXPECT_LE(outcome->val.k(), ctx_.ktable->k_max());

    // Any single-byte tamper is rejected.
    auto forged =
        tamper::ReplaceRandom(outcome->val, crypto::Hash256::Of("t"));
    EXPECT_FALSE(VerifyActorList(ctx_, forged).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionSweepTest,
    ::testing::Values(SweepParam{500, 0.01, 4}, SweepParam{1000, 0.002, 8},
                      SweepParam{2000, 0.01, 8}, SweepParam{2000, 0.05, 16},
                      SweepParam{5000, 0.01, 32},
                      SweepParam{5000, 0.001, 8},
                      SweepParam{10000, 0.02, 16}),
    [](const auto& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_C" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 10000)) +
             "bp_A" + std::to_string(std::get<2>(info.param));
    });

TEST(ActorListUniformityTest, NoCandidateStarvedOrDominant) {
  // A subtle property of the paper's kpub xor RND_S sort: it is
  // *pairwise* fair (P(a beats b) = 1/2 for any fixed pair over a
  // uniform RND_S) but, for a FIXED candidate set, the joint min-rank
  // probabilities depend on the keys' XOR-tree geometry — the same
  // effect as Kademlia's XOR metric. Selection is therefore unbiasable
  // and unpredictable, yet not exactly uniform per candidate. Assert the
  // security-relevant bounds: nobody is starved, nobody dominates.
  crypto::SimProvider provider;
  util::Rng rng(5);
  std::vector<std::vector<crypto::PublicKey>> lists(1);
  constexpr int kCandidates = 40;
  constexpr int kPick = 8;
  constexpr int kRounds = 3000;
  for (int i = 0; i < kCandidates; ++i) {
    lists[0].push_back(provider.GenerateKeyPair(rng)->pub);
  }
  std::map<crypto::PublicKey, int> hits;
  for (int round = 0; round < kRounds; ++round) {
    crypto::Hash256 rnd_s =
        crypto::Hash256::Of("uniformity-" + std::to_string(round));
    for (const crypto::PublicKey& key :
         BuildActorList(lists, rnd_s, kPick)) {
      ++hits[key];
    }
  }
  const double expected =
      static_cast<double>(kRounds) * kPick / kCandidates;  // 600
  EXPECT_EQ(hits.size(), static_cast<size_t>(kCandidates));
  for (const auto& [key, count] : hits) {
    EXPECT_GT(count, expected * 0.25);  // never starved
    EXPECT_LT(count, expected * 3.0);   // never dominant
  }
}

TEST(ActorListUniformityTest, UniformOverRandomKeySets) {
  // Averaged over random key material (which is what an attacker faces:
  // keys are hashes it cannot shape towards a future unknown candidate
  // set), each list position is hit uniformly.
  crypto::SimProvider provider;
  util::Rng rng(15);
  constexpr int kCandidates = 20;
  constexpr int kPick = 5;
  constexpr int kRounds = 4000;
  // hits[i] = how often the i-th generated candidate was selected.
  std::vector<int> hits(kCandidates, 0);
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<crypto::PublicKey>> lists(1);
    std::map<crypto::PublicKey, int> position;
    for (int i = 0; i < kCandidates; ++i) {
      crypto::PublicKey key = provider.GenerateKeyPair(rng)->pub;
      position[key] = i;
      lists[0].push_back(key);
    }
    crypto::Hash256 rnd_s =
        crypto::Hash256::Of("fresh-" + std::to_string(round));
    for (const crypto::PublicKey& key :
         BuildActorList(lists, rnd_s, kPick)) {
      ++hits[position[key]];
    }
  }
  const double expected =
      static_cast<double>(kRounds) * kPick / kCandidates;  // 1000
  for (int count : hits) {
    EXPECT_NEAR(count, expected, expected * 0.12);
  }
}

TEST(ActorListUniformityTest, SelectionUnbiasedTowardListOwners) {
  // An SL cannot boost its own selection chance by being a list builder:
  // the sort key depends only on the candidate's key and RND_S.
  crypto::SimProvider provider;
  util::Rng rng(6);
  std::vector<crypto::PublicKey> shared;
  for (int i = 0; i < 30; ++i) {
    shared.push_back(provider.GenerateKeyPair(rng)->pub);
  }
  // Two builders with the same candidate pool split differently.
  std::vector<std::vector<crypto::PublicKey>> split_a{
      {shared.begin(), shared.begin() + 20},
      {shared.begin() + 10, shared.end()}};
  std::vector<std::vector<crypto::PublicKey>> split_b{
      {shared.begin(), shared.end()}, {}};
  crypto::Hash256 rnd_s = crypto::Hash256::Of("same-round");
  EXPECT_EQ(BuildActorList(split_a, rnd_s, 10),
            BuildActorList(split_b, rnd_s, 10));
}

TEST(SetterDistributionTest, SettersSpreadAcrossTheRing) {
  // Benefit (2)/(3) of §3.5: hash(RND_T) relocates every computation to
  // a fresh region, balancing load. Bucket the setter positions of many
  // runs into 8 arcs.
  auto network = test::MakeNetwork(2000, 0.01);
  ASSERT_NE(network, nullptr);
  core::ProtocolContext ctx = network->context();
  SelectionProtocol protocol(ctx);
  util::Rng rng(11);
  int buckets[8] = {};
  const int kRuns = 160;
  for (int run = 0; run < kRuns; ++run) {
    uint32_t trigger =
        static_cast<uint32_t>(rng.NextUint64(network->directory().size()));
    auto outcome = protocol.Run(trigger, rng);
    ASSERT_TRUE(outcome.ok());
    dht::RingPos pos =
        network->directory().pos(outcome->setter_index);
    ++buckets[static_cast<int>(pos >> 125)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 4) << "a ring octant is starved of setters";
    EXPECT_LT(b, kRuns / 2) << "a ring octant hoards the setters";
  }
}

}  // namespace
}  // namespace sep2p::core
