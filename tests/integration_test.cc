// End-to-end scenarios with REAL Ed25519 cryptography on a small network:
// the full pipeline the examples demonstrate, asserted.

#include <gtest/gtest.h>

#include "apps/diffusion.h"
#include "apps/query.h"
#include "apps/sensing.h"
#include "core/verification.h"
#include "strategies/strategy.h"
#include "tests/test_util.h"

namespace sep2p {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/400, /*c_fraction=*/0.02,
                                 /*cache=*/96, /*seed=*/2026,
                                 sim::Parameters::ProviderKind::kEd25519);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(400));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  util::Rng rng_{31};
};

TEST_F(IntegrationTest, SelectionVerifiesUnderRealCrypto) {
  core::ProtocolContext ctx = network_->context();
  core::SelectionProtocol protocol(ctx);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto cost = core::VerifyActorList(ctx, outcome->val);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * outcome->val.k());

  // Tampering is caught under real signatures too.
  auto forged =
      core::tamper::ReplaceRandom(outcome->val, crypto::Hash256::Of("x"));
  EXPECT_FALSE(core::VerifyActorList(ctx, forged).ok());
}

TEST_F(IntegrationTest, FullSensingRound) {
  apps::ParticipatorySensingApp::Config config;
  config.aggregator_count = 4;
  apps::ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get(),
                                    config);
  app.GenerateWorkload(/*sources=*/60, /*readings_per_source=*/4, rng_);
  auto round = app.RunRound(3, rng_);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->sources, 60);
  EXPECT_EQ(round->aggregate.total_count(), 240u);
  EXPECT_EQ(round->verifier_rejections, 0);
}

TEST_F(IntegrationTest, FullDiffusionAndQueryPipeline) {
  for (uint32_t i = 0; i < pdms_.size(); ++i) {
    if (i % 4 == 0) pdms_[i].AddConcept("subscriber");
    pdms_[i].SetAttribute("score", (i % 7) * 1.0);
  }
  apps::ConceptIndex index(network_.get(), runtime_.get());
  apps::DiffusionApp diffusion(network_.get(), &pdms_, &index,
                               runtime_.get());
  ASSERT_TRUE(diffusion.PublishAllProfiles(rng_).ok());

  auto diffused = diffusion.Diffuse(1, "subscriber", "breaking news", rng_);
  ASSERT_TRUE(diffused.ok()) << diffused.status().ToString();
  EXPECT_EQ(diffused->targets.size(), 100u);  // 400 / 4

  apps::QueryApp query(network_.get(), &pdms_, &index, runtime_.get());
  apps::QuerySpec spec;
  spec.profile_expression = "subscriber";
  spec.attribute = "score";
  spec.aggregate = apps::Aggregate::kAvg;
  auto result = query.Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->contributors, 100u);
  double expected = 0;
  for (uint32_t i = 0; i < 400; i += 4) expected += i % 7;
  expected /= 100;
  EXPECT_NEAR(result->value, expected, 1e-9);
}

TEST_F(IntegrationTest, StrategiesRunUnderRealCrypto) {
  core::ProtocolContext ctx = network_->context();
  strategies::AdversaryConfig passive =
      strategies::AdversaryConfig::Passive();
  for (const char* name : {"SEP2P", "ES.NAV", "ES.AV", "M.Hash"}) {
    auto strategy = strategies::MakeStrategy(name, ctx, passive);
    auto run = strategy->Run(9, rng_);
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    EXPECT_EQ(run->actors.size(), static_cast<size_t>(ctx.actor_count));
  }
}

TEST_F(IntegrationTest, MeterAgreesWithCostModelAcrossWholeSelection) {
  core::ProtocolContext ctx = network_->context();
  core::SelectionProtocol protocol(ctx);
  network_->provider().meter().Reset();
  auto outcome = protocol.Run(11, rng_);
  ASSERT_TRUE(outcome.ok());
  // The meter counts every real signature/verification performed during
  // setup; the cost model's crypto_work counts the same operations.
  EXPECT_EQ(network_->provider().meter().asym_ops(),
            static_cast<uint64_t>(outcome->cost.crypto_work));
}

}  // namespace
}  // namespace sep2p
