#include "sim/network.h"

#include <gtest/gtest.h>

#include "dht/node_id.h"
#include "tests/test_util.h"

namespace sep2p::sim {
namespace {

TEST(NetworkTest, BuildsRequestedSize) {
  auto network = test::MakeNetwork(1000, 0.01);
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(network->directory().size(), 1000u);
  EXPECT_EQ(network->directory().alive_count(), 1000u);
}

TEST(NetworkTest, ColluderCountMatchesFraction) {
  auto network = test::MakeNetwork(1000, 0.05);
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(network->ColluderIndices().size(), 50u);
}

TEST(NetworkTest, AtLeastOneColluderEvenForTinyFractions) {
  auto network = test::MakeNetwork(1000, 1e-9);
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(network->ColluderIndices().size(), 1u);
}

TEST(NetworkTest, NodeIdsAreImposedFromPublicKeys) {
  auto network = test::MakeNetwork(200, 0.01);
  ASSERT_NE(network, nullptr);
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    const dht::Directory& dir = network->directory();
    EXPECT_EQ(dir.id(i), dht::NodeIdForKey(dir.pub(i)));
    EXPECT_EQ(dir.pos(i), dir.id(i).ring_pos());
  }
}

TEST(NetworkTest, EveryCertificateChecksOut) {
  auto network = test::MakeNetwork(200, 0.01);
  ASSERT_NE(network, nullptr);
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    EXPECT_TRUE(network->ca().Check(network->directory().cert(i)));
  }
}

TEST(NetworkTest, ReassignColludersKeepsCount) {
  auto network = test::MakeNetwork(1000, 0.03);
  ASSERT_NE(network, nullptr);
  auto before = network->ColluderIndices();
  util::Rng rng(5);
  network->ReassignColluders(rng);
  auto after = network->ColluderIndices();
  EXPECT_EQ(before.size(), after.size());
  EXPECT_NE(before, after);  // overwhelmingly likely
}

TEST(NetworkTest, ColludersAreSpreadUniformly) {
  // Imposed locations: colluders cannot cluster. Bucket their ring
  // positions into 8 arcs and check rough balance.
  auto network = test::MakeNetwork(8000, 0.1, /*cache=*/256, /*seed=*/3);
  ASSERT_NE(network, nullptr);
  int buckets[8] = {};
  for (uint32_t idx : network->ColluderIndices()) {
    ++buckets[static_cast<int>(network->directory().pos(idx) >> 125)];
  }
  for (int b : buckets) EXPECT_NEAR(b, 100, 45);
}

TEST(NetworkTest, ContextIsFullyWired) {
  auto network = test::MakeNetwork(500, 0.01);
  ASSERT_NE(network, nullptr);
  core::ProtocolContext ctx = network->context();
  EXPECT_NE(ctx.directory, nullptr);
  EXPECT_NE(ctx.overlay, nullptr);
  EXPECT_NE(ctx.provider, nullptr);
  EXPECT_NE(ctx.ca, nullptr);
  EXPECT_NE(ctx.ktable, nullptr);
  EXPECT_GT(ctx.rs3, 0);
  EXPECT_GT(ctx.tolerance_rs, 0);
}

TEST(NetworkTest, RejectsDegenerateParameters) {
  Parameters too_small;
  too_small.n = 2;
  EXPECT_FALSE(Network::Build(too_small).ok());

  Parameters all_colluding;
  all_colluding.n = 100;
  all_colluding.colluding_fraction = 1.0;
  EXPECT_FALSE(Network::Build(all_colluding).ok());
}

TEST(NetworkTest, Ed25519ProviderWorksEndToEnd) {
  auto network = test::MakeNetwork(64, 0.05, /*cache=*/16, /*seed=*/9,
                                   Parameters::ProviderKind::kEd25519);
  ASSERT_NE(network, nullptr);
  EXPECT_STREQ(network->provider().name(), "ed25519");
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(network->ca().Check(network->directory().cert(i)));
  }
}

TEST(NetworkTest, SameSeedSameNetwork) {
  auto a = test::MakeNetwork(300, 0.01, 64, /*seed=*/77);
  auto b = test::MakeNetwork(300, 0.01, 64, /*seed=*/77);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (uint32_t i = 0; i < a->directory().size(); ++i) {
    EXPECT_EQ(a->directory().id(i), b->directory().id(i));
    EXPECT_EQ(a->directory().colluding(i),
              b->directory().colluding(i));
  }
}

TEST(NetworkTest, CanOverlayIsLazilyAvailable) {
  auto network = test::MakeNetwork(128, 0.01);
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(network->can().zone_count(), 128u);
}

}  // namespace
}  // namespace sep2p::sim
