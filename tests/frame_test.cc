// Decode-robustness tests for the TcpTransport framing layer
// (net/frame.h): truncated frames, oversized declared lengths, partial
// reads, and garbage bytes must be rejected — never crash the parser or
// make it allocate attacker-controlled amounts of memory.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace sep2p::net {
namespace {

Frame SampleFrame() {
  Frame f;
  f.type = kFrameRequest;
  f.rpc_id = 0x1122334455667788ULL;
  f.src = 7;
  f.dst = 42;
  f.status = kFrameOk;
  f.payload = {0xde, 0xad, 0xbe, 0xef};
  return f;
}

TEST(FrameTest, RoundTripsRequestAndResponse) {
  FrameParser parser;
  std::vector<Frame> out;

  Frame request = SampleFrame();
  std::vector<uint8_t> wire = EncodeFrame(request);
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kFrameRequest);
  EXPECT_EQ(out[0].rpc_id, request.rpc_id);
  EXPECT_EQ(out[0].src, request.src);
  EXPECT_EQ(out[0].dst, request.dst);
  EXPECT_EQ(out[0].payload, request.payload);

  Frame response = SampleFrame();
  response.type = kFrameResponse;
  response.status = kFrameRefused;
  response.payload.clear();
  wire = EncodeFrame(response);
  out.clear();
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kFrameResponse);
  EXPECT_EQ(out[0].status, kFrameRefused);
  EXPECT_TRUE(out[0].payload.empty());
}

TEST(FrameTest, ByteAtATimeFeedDecodesIdentically) {
  Frame frame = SampleFrame();
  std::vector<uint8_t> wire = EncodeFrame(frame);

  FrameParser parser;
  std::vector<Frame> out;
  for (size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(parser.Feed(&wire[i], 1, &out).ok()) << "at byte " << i;
    if (i + 1 < wire.size()) {
      EXPECT_TRUE(out.empty()) << "frame completed early at byte " << i;
    }
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, frame.payload);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(FrameTest, TruncatedFrameStaysPendingNotDecoded) {
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
  FrameParser parser;
  std::vector<Frame> out;
  // Everything but the last payload byte: valid prefix, no frame yet.
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size() - 1, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.pending_bytes(), wire.size() - 1);
  // The final byte completes it.
  ASSERT_TRUE(parser.Feed(&wire[wire.size() - 1], 1, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(FrameTest, RejectsBadMagic) {
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
  wire[0] = 'X';
  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_FALSE(parser.Feed(wire.data(), wire.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, RejectsUnknownTypeAndVersion) {
  {
    std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
    wire[3] = 9;  // type
    FrameParser parser;
    std::vector<Frame> out;
    EXPECT_FALSE(parser.Feed(wire.data(), wire.size(), &out).ok());
  }
  {
    std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
    wire[4] = 0xff;  // version hi byte
    FrameParser parser;
    std::vector<Frame> out;
    EXPECT_FALSE(parser.Feed(wire.data(), wire.size(), &out).ok());
  }
}

TEST(FrameTest, RejectsOversizedDeclaredLengthWithoutAllocating) {
  // A hostile 4 GB length prefix must be rejected from the header alone
  // — no payload bytes ever arrive, and nothing payload-sized may be
  // allocated. The header is rejected as soon as it is complete.
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
  wire.resize(kFrameHeaderLen);  // header only
  // Overwrite the trailing u32 length field with 0xffffffff.
  std::memset(&wire[kFrameHeaderLen - 4], 0xff, 4);
  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_FALSE(parser.Feed(wire.data(), wire.size(), &out).ok());
  EXPECT_TRUE(out.empty());
  // Just over the cap is rejected too; exactly at the cap is fine.
  auto with_len = [](uint32_t len) {
    std::vector<uint8_t> header = EncodeFrame(Frame{});
    header.resize(kFrameHeaderLen);
    header[kFrameHeaderLen - 4] = static_cast<uint8_t>(len >> 24);
    header[kFrameHeaderLen - 3] = static_cast<uint8_t>(len >> 16);
    header[kFrameHeaderLen - 2] = static_cast<uint8_t>(len >> 8);
    header[kFrameHeaderLen - 1] = static_cast<uint8_t>(len);
    return header;
  };
  {
    std::vector<uint8_t> header = with_len(kMaxFramePayload + 1);
    FrameParser p;
    std::vector<Frame> frames;
    EXPECT_FALSE(p.Feed(header.data(), header.size(), &frames).ok());
  }
  {
    std::vector<uint8_t> header = with_len(kMaxFramePayload);
    FrameParser p;
    std::vector<Frame> frames;
    EXPECT_TRUE(p.Feed(header.data(), header.size(), &frames).ok());
    EXPECT_TRUE(frames.empty());  // waiting for 1 MiB of payload
  }
}

TEST(FrameTest, UntracedFramesEncodeAsVersion1ByteForByte) {
  // span == hlc == 0 must produce the EXACT pre-observability wire
  // bytes: version-negotiation-by-content means an untraced cluster
  // speaks to older builds unchanged.
  Frame frame = SampleFrame();
  ASSERT_EQ(frame.span, 0u);
  ASSERT_EQ(frame.hlc, 0u);
  const std::vector<uint8_t> wire = EncodeFrame(frame);
  const std::vector<uint8_t> expected = {
      'S', '2', 'P',                                   // magic
      0x01,                                            // type: request
      0x00, 0x01,                                      // version 1
      0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,  // rpc_id
      0x00, 0x00, 0x00, 0x07,                          // src
      0x00, 0x00, 0x00, 0x2a,                          // dst
      0x00,                                            // status: ok
      0x00, 0x00, 0x00, 0x04,                          // len
      0xde, 0xad, 0xbe, 0xef,                          // payload
  };
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(wire.size(), kFrameHeaderLen + frame.payload.size());
}

TEST(FrameTest, TracedFramesRoundTripSpanAndHlcAsVersion2) {
  Frame frame = SampleFrame();
  frame.span = 0x0001000000000007ULL;  // process-branded span id
  frame.hlc = 0xabcdef0123456789ULL;
  const std::vector<uint8_t> wire = EncodeFrame(frame);
  EXPECT_EQ(wire.size(), kFrameHeaderLenV2 + frame.payload.size());
  EXPECT_EQ(wire[4], 0x00);  // version hi
  EXPECT_EQ(wire[5], 0x02);  // version lo: 2

  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].span, frame.span);
  EXPECT_EQ(out[0].hlc, frame.hlc);
  EXPECT_EQ(out[0].rpc_id, frame.rpc_id);
  EXPECT_EQ(out[0].payload, frame.payload);

  // A span alone (hlc 0) is still correlated traffic: version 2.
  Frame span_only = SampleFrame();
  span_only.span = 1;
  EXPECT_EQ(EncodeFrame(span_only).size(),
            kFrameHeaderLenV2 + span_only.payload.size());
}

TEST(FrameTest, MixedVersionsInterleaveOnOneStream) {
  Frame v1 = SampleFrame();
  Frame v2 = SampleFrame();
  v2.rpc_id = 2;
  v2.span = 5;
  v2.hlc = 77;
  std::vector<uint8_t> wire = EncodeFrame(v1);
  const std::vector<uint8_t> second = EncodeFrame(v2);
  wire.insert(wire.end(), second.begin(), second.end());
  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].span, 0u);
  EXPECT_EQ(out[1].span, 5u);
  EXPECT_EQ(out[1].hlc, 77u);
}

TEST(FrameTest, ControlFramesRoundTripTheStatusPlane) {
  // Request: empty payload, span/hlc zero — the probe a scraper sends.
  Frame probe;
  probe.type = kFrameControl;
  probe.rpc_id = 1;
  const std::vector<uint8_t> probe_wire = EncodeFrame(probe);
  EXPECT_EQ(probe_wire.size(), kFrameHeaderLen);  // v1, no payload
  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(probe_wire.data(), probe_wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kFrameControl);
  EXPECT_TRUE(out[0].payload.empty());

  // Response: the status text rides as the payload.
  Frame status = probe;
  const std::string text = "sep2p_health{verdict=\"ok\"} 1\n";
  status.payload.assign(text.begin(), text.end());
  const std::vector<uint8_t> status_wire = EncodeFrame(status);
  out.clear();
  FrameParser parser2;
  ASSERT_TRUE(
      parser2.Feed(status_wire.data(), status_wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kFrameControl);
  EXPECT_EQ(std::string(out[0].payload.begin(), out[0].payload.end()), text);
}

TEST(FrameTest, UnknownVersionLowByteIsRejected) {
  // Version 3 does not exist; only 1 and 2 parse (the hi-byte case is
  // covered by RejectsUnknownTypeAndVersion).
  std::vector<uint8_t> wire = EncodeFrame(SampleFrame());
  wire[5] = 3;  // version lo byte
  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_FALSE(parser.Feed(wire.data(), wire.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, GarbageStreamIsRejectedNotCrashed) {
  std::vector<uint8_t> garbage(4096);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_FALSE(parser.Feed(garbage.data(), garbage.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, ParseErrorIsSticky) {
  std::vector<uint8_t> bad = EncodeFrame(SampleFrame());
  bad[0] = 'X';
  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_FALSE(parser.Feed(bad.data(), bad.size(), &out).ok());
  // A perfectly valid frame after the error must still be refused:
  // framing has no resync point, the connection is dead.
  std::vector<uint8_t> good = EncodeFrame(SampleFrame());
  EXPECT_FALSE(parser.Feed(good.data(), good.size(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, BackToBackFramesInOneRead) {
  Frame a = SampleFrame();
  Frame b = SampleFrame();
  b.rpc_id = 2;
  b.payload = {1, 2, 3};
  std::vector<uint8_t> wire = EncodeFrame(a);
  std::vector<uint8_t> second = EncodeFrame(b);
  wire.insert(wire.end(), second.begin(), second.end());

  FrameParser parser;
  std::vector<Frame> out;
  ASSERT_TRUE(parser.Feed(wire.data(), wire.size(), &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rpc_id, SampleFrame().rpc_id);
  EXPECT_EQ(out[1].rpc_id, 2u);
  EXPECT_EQ(out[1].payload, b.payload);
}

}  // namespace
}  // namespace sep2p::net
