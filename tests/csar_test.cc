// CSAR baseline protocol + the Ideal/CSAR bound strategies.

#include "core/csar.h"

#include <gtest/gtest.h>

#include <set>

#include "strategies/baselines.h"
#include "tests/test_util.h"

namespace sep2p::core {
namespace {

class CsarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/1000, /*c_fraction=*/0.02);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  std::unique_ptr<sim::Network> network_;
  ProtocolContext ctx_;
  util::Rng rng_{3};
};

TEST_F(CsarTest, GeneratesAndVerifies) {
  CsarProtocol protocol(ctx_);
  auto outcome = protocol.Generate(5, /*participant_count=*/21, rng_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->random.participant_count(), 21);
  auto cost = VerifyCsar(ctx_, outcome->random);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * 21 + 1);
}

TEST_F(CsarTest, ParticipantsAreDistinctAndExcludeTrigger) {
  CsarProtocol protocol(ctx_);
  auto outcome = protocol.Generate(5, 30, rng_);
  ASSERT_TRUE(outcome.ok());
  std::set<uint32_t> unique(outcome->participant_indices.begin(),
                            outcome->participant_indices.end());
  EXPECT_EQ(unique.size(), 30u);
  EXPECT_EQ(unique.count(5), 0u);
}

TEST_F(CsarTest, TamperedContributionRejected) {
  CsarProtocol protocol(ctx_);
  auto outcome = protocol.Generate(5, 10, rng_);
  ASSERT_TRUE(outcome.ok());
  CsarRandom forged = outcome->random;
  forged.participants[3].rnd = crypto::Hash256::Of("steered");
  EXPECT_FALSE(VerifyCsar(ctx_, forged).ok());
}

TEST_F(CsarTest, BadParticipantCountsRejected) {
  CsarProtocol protocol(ctx_);
  EXPECT_FALSE(protocol.Generate(5, 0, rng_).ok());
  EXPECT_FALSE(protocol.Generate(5, 1000, rng_).ok());
}

TEST_F(CsarTest, ActorMappingIsDeterministicAndDistinct) {
  crypto::Hash256 rnd = crypto::Hash256::Of("round-42");
  auto a = CsarActorsFromRandom(network_->directory(), rnd, 16);
  auto b = CsarActorsFromRandom(network_->directory(), rnd, 16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 16u);
  std::set<uint32_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST_F(CsarTest, ActorMappingIsUniformish) {
  // Each alive node should be hit roughly uniformly across many randoms.
  std::vector<int> hits(network_->directory().size(), 0);
  for (int round = 0; round < 400; ++round) {
    crypto::Hash256 rnd = crypto::Hash256::Of("r" + std::to_string(round));
    for (uint32_t actor :
         CsarActorsFromRandom(network_->directory(), rnd, 8)) {
      ++hits[actor];
    }
  }
  // 3200 picks over 1000 nodes: expect ~3.2, no node dominating.
  int max_hits = 0;
  for (int h : hits) max_hits = std::max(max_hits, h);
  EXPECT_LE(max_hits, 16);
}

TEST_F(CsarTest, CsarStrategyIsIdealButExpensive) {
  strategies::AdversaryConfig full;
  strategies::CsarStrategy csar(ctx_, full);
  util::Rng rng(7);
  double corrupted = 0;
  const int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    auto run = csar.Run(t % 100, rng);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    corrupted += run->corrupted_actors;
    // 2(C+1) + A with C = 20, A = 8.
    EXPECT_DOUBLE_EQ(run->verification_cost, 2.0 * 21 + 8);
    // Setup fans out to C+1 participants.
    EXPECT_GE(run->setup_cost.msg_work, 4.0 * 21);
  }
  // Ideal effectiveness: ~A*C/N = 0.16 corrupted per run.
  EXPECT_LE(corrupted / kTrials, 0.6);
}

TEST_F(CsarTest, IdealStrategyCostsOneVerification) {
  strategies::AdversaryConfig full;
  strategies::IdealStrategy ideal(ctx_, full);
  util::Rng rng(9);
  auto run = ideal.Run(0, rng);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->verification_cost, 1.0);
  EXPECT_EQ(run->actors.size(), static_cast<size_t>(ctx_.actor_count));
}

TEST_F(CsarTest, IdealStrategyIsUnbiased) {
  strategies::AdversaryConfig full;
  strategies::IdealStrategy ideal(ctx_, full);
  util::Rng rng(11);
  double corrupted = 0;
  for (int t = 0; t < 60; ++t) {
    auto run = ideal.Run(0, rng);
    ASSERT_TRUE(run.ok());
    corrupted += run->corrupted_actors;
  }
  EXPECT_LE(corrupted / 60, 0.6);  // ideal ~0.16
}

TEST_F(CsarTest, FactoryKnowsBaselines) {
  strategies::AdversaryConfig adv;
  EXPECT_NE(strategies::MakeStrategy("Ideal", ctx_, adv), nullptr);
  EXPECT_NE(strategies::MakeStrategy("CSAR", ctx_, adv), nullptr);
}

TEST_F(CsarTest, VerificationCostGrowsLinearlyWithC) {
  // The scaling failure that motivates SEP2P: CSAR verification is
  // linear in the collusion size, SEP2P's 2k is (nearly) flat.
  strategies::AdversaryConfig passive =
      strategies::AdversaryConfig::Passive();
  util::Rng rng(13);

  auto small_net = test::MakeNetwork(1000, 0.01);  // C = 10
  auto big_net = test::MakeNetwork(1000, 0.05);    // C = 50
  ASSERT_NE(small_net, nullptr);
  ASSERT_NE(big_net, nullptr);
  core::ProtocolContext small_ctx = small_net->context();
  core::ProtocolContext big_ctx = big_net->context();

  strategies::CsarStrategy csar_small(small_ctx, passive);
  strategies::CsarStrategy csar_big(big_ctx, passive);
  auto rs = csar_small.Run(1, rng);
  auto rb = csar_big.Run(1, rng);
  ASSERT_TRUE(rs.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(rb->verification_cost - rs->verification_cost,
                   2.0 * (50 - 10));

  strategies::Sep2pStrategy sep2p_small(small_ctx, passive);
  strategies::Sep2pStrategy sep2p_big(big_ctx, passive);
  auto ss = sep2p_small.Run(1, rng);
  auto sb = sep2p_big.Run(1, rng);
  ASSERT_TRUE(ss.ok() && sb.ok());
  EXPECT_LE(sb->verification_cost - ss->verification_cost, 8);
}

}  // namespace
}  // namespace sep2p::core
