#include "apps/diffusion.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class DiffusionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(1200, 0.01, /*cache=*/160);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    // Deterministic profiles: node i is a pilot iff i % 5 == 0, in their
    // forties iff i % 3 == 0, retired iff i % 7 == 0.
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 5 == 0) pdms_[i].AddConcept("pilot");
      if (i % 3 == 0) pdms_[i].AddConcept("age:40s");
      if (i % 7 == 0) pdms_[i].AddConcept("retired");
    }
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(1200));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
    index_ = std::make_unique<ConceptIndex>(network_.get(), runtime_.get());
    app_ = std::make_unique<DiffusionApp>(network_.get(), &pdms_,
                                          index_.get(), runtime_.get());
    util::Rng rng(5);
    ASSERT_TRUE(app_->PublishAllProfiles(rng).ok());
  }

  std::vector<uint32_t> Expected(const std::string& expression) {
    auto parsed = ProfileExpression::Parse(expression);
    EXPECT_TRUE(parsed.ok());
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (parsed->Matches(pdms_[i].concepts())) out.push_back(i);
    }
    return out;
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  std::unique_ptr<ConceptIndex> index_;
  std::unique_ptr<DiffusionApp> app_;
  util::Rng rng_{19};
};

TEST_F(DiffusionTest, SingleConceptReachesExactlyTheMatchingNodes) {
  auto result = app_->Diffuse(1, "pilot", "hello pilots", rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->targets, Expected("pilot"));
  for (uint32_t target : result->targets) {
    ASSERT_EQ(pdms_[target].inbox().size(), 1u);
    EXPECT_EQ(pdms_[target].inbox()[0], "hello pilots");
  }
}

TEST_F(DiffusionTest, ConjunctionFiltersCandidates) {
  auto result = app_->Diffuse(1, "pilot AND age:40s", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->targets, Expected("pilot AND age:40s"));
  // i % 15 == 0: ~1200/15 = 80 targets.
  EXPECT_NEAR(result->targets.size(), 80, 1);
}

TEST_F(DiffusionTest, NegationExcludesWithinCandidates) {
  auto result = app_->Diffuse(1, "pilot AND NOT retired", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->targets, Expected("pilot AND NOT retired"));
  for (uint32_t target : result->targets) {
    EXPECT_FALSE(pdms_[target].HasConcept("retired"));
  }
}

TEST_F(DiffusionTest, DisjunctionUnionsCandidates) {
  auto result = app_->Diffuse(1, "pilot OR retired", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->targets, Expected("pilot OR retired"));
}

TEST_F(DiffusionTest, NonMatchingNodesReceiveNothing) {
  auto result = app_->Diffuse(1, "pilot", "only pilots", rng_);
  ASSERT_TRUE(result.ok());
  std::set<uint32_t> targets(result->targets.begin(),
                             result->targets.end());
  for (uint32_t i = 0; i < pdms_.size(); ++i) {
    if (targets.count(i) == 0) {
      EXPECT_TRUE(pdms_[i].inbox().empty()) << i;
    }
  }
}

TEST_F(DiffusionTest, MalformedExpressionFailsCleanly) {
  auto result = app_->Diffuse(1, "NOT pilot", "msg", rng_);
  EXPECT_FALSE(result.ok());
  auto result2 = app_->Diffuse(1, "pilot AND", "msg", rng_);
  EXPECT_FALSE(result2.ok());
}

TEST_F(DiffusionTest, TargetFindersAreSelectedSecurely) {
  auto result = app_->Diffuse(1, "pilot", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->target_finders.size(), 4u);
  EXPECT_EQ(result->indexer_rejections, 0);
  EXPECT_GT(result->indexers_contacted, 0);
}

TEST_F(DiffusionTest, UnknownConceptReachesNobody) {
  auto result = app_->Diffuse(1, "astronaut", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->targets.empty());
}

TEST_F(DiffusionTest, FaultFreeDiffusionHasNoDegradation) {
  auto result = app_->Diffuse(1, "pilot", "msg", rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selection_restarts, 0);
  EXPECT_EQ(result->indexer_failures, 0);
  EXPECT_EQ(result->offer_failures, 0);
  EXPECT_GT(result->candidates_contacted, 0);
  EXPECT_GT(result->round_latency_us, 0u);
}

TEST_F(DiffusionTest, LossyOffersDegradeToASubsetOfTrueTargets) {
  // Publish over a clean network, then diffuse over a lossy one: some
  // offers (or index lookups) exhaust their retries, but whoever IS
  // reached is a genuine match and actually received the message.
  net::SimNetwork lossy = test::MakeSimNet(1200, /*drop=*/0.25,
                                           /*jitter_mean_us=*/0, /*seed=*/6);
  node::AppRuntime runtime(&lossy);
  ConceptIndex index(network_.get(), &runtime);
  DiffusionApp app(network_.get(), &pdms_, &index, &runtime);
  util::Rng rng(31);
  ASSERT_TRUE(app.PublishAllProfiles(rng).ok());
  auto result = app.Diffuse(1, "pilot", "lossy hello", rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(lossy.stats().retries, 0u);

  std::vector<uint32_t> expected = Expected("pilot");
  std::set<uint32_t> expected_set(expected.begin(), expected.end());
  EXPECT_LE(result->targets.size(), expected.size());
  for (uint32_t target : result->targets) {
    EXPECT_EQ(expected_set.count(target), 1u) << target;
    // Exactly one copy despite retransmissions (offer-id dedup).
    EXPECT_EQ(pdms_[target].inbox().size(), 1u) << target;
  }
  // The degradation is reported, never silent: whatever is missing from
  // the target set is accounted for by a failure counter (a share lost
  // during publish also shrinks the candidate set).
  if (result->targets.size() < expected.size()) {
    EXPECT_GT(result->offer_failures + result->indexer_failures +
                  static_cast<int>(expected.size()) -
                  result->candidates_contacted,
              0);
  }
}

TEST_F(DiffusionTest, WorksWithShamirShardedIndex) {
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(1200);
  node::AppRuntime runtime(&simnet);
  ConceptIndex sharded(network_.get(), &runtime, options);
  DiffusionApp app(network_.get(), &pdms_, &sharded, &runtime);
  util::Rng rng(7);
  ASSERT_TRUE(app.PublishAllProfiles(rng).ok());
  auto result = app.Diffuse(1, "pilot AND age:40s", "msg", rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->targets, Expected("pilot AND age:40s"));
}

}  // namespace
}  // namespace sep2p::apps
