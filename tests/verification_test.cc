// The verifier-side gate: every forgery class must be caught before a
// data source discloses anything.

#include "core/verification.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sep2p::core {
namespace {

class VerificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/3000, /*c_fraction=*/0.01,
                                 /*cache=*/256);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
    SelectionProtocol protocol(ctx_);
    util::Rng rng(21);
    auto outcome = protocol.Run(/*trigger_index=*/4, rng);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    val_ = outcome->val;
  }

  std::unique_ptr<sim::Network> network_;
  ProtocolContext ctx_;
  VerifiableActorList val_;
};

TEST_F(VerificationTest, GenuineListAccepted) {
  VerifierDecision decision =
      VerifyBeforeDisclosure(ctx_, val_, nullptr, nullptr);
  EXPECT_TRUE(decision.accepted) << decision.reason.ToString();
  EXPECT_DOUBLE_EQ(decision.cost.crypto_work, 2.0 * val_.k());
}

TEST_F(VerificationTest, ActorSubstitutionRejected) {
  crypto::PublicKey forged{};
  forged[0] = 0x66;
  VerifierDecision decision = VerifyBeforeDisclosure(
      ctx_, tamper::ReplaceActor(val_, forged), nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason.code(), StatusCode::kSecurityViolation);
}

TEST_F(VerificationTest, RandomSubstitutionRejected) {
  VerifierDecision decision = VerifyBeforeDisclosure(
      ctx_, tamper::ReplaceRandom(val_, crypto::Hash256::Of("evil")),
      nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

TEST_F(VerificationTest, StaleListRejected) {
  VerifierDecision decision = VerifyBeforeDisclosure(
      ctx_, tamper::MakeStale(val_), nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

TEST_F(VerificationTest, ForeignAttestationRejected) {
  // An attacker swaps in a signature from a node outside R2 (signing the
  // same bytes, so the signature itself is valid).
  const dht::Directory& dir = network_->directory();
  dht::Region r2 =
      dht::Region::Centered(val_.SetterPoint().ring_pos(), val_.rs2);
  uint32_t outsider = 0;
  for (uint32_t i = 0; i < dir.size(); ++i) {
    if (!r2.Contains(dir.pos(i))) {
      outsider = i;
      break;
    }
  }
  auto sig = ctx_.SignAs(outsider, val_.SignedBytes());
  ASSERT_TRUE(sig.ok());
  VerifierDecision decision = VerifyBeforeDisclosure(
      ctx_, tamper::ReplaceAttestation(val_, dir.cert(outsider), *sig),
      nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

TEST_F(VerificationTest, BrokenSignatureRejected) {
  VerifiableActorList broken = val_;
  broken.attestations[0].sig[0] ^= 0xff;
  VerifierDecision decision =
      VerifyBeforeDisclosure(ctx_, broken, nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

TEST_F(VerificationTest, EmptyAttestationsRejected) {
  VerifiableActorList empty = val_;
  empty.attestations.clear();
  VerifierDecision decision =
      VerifyBeforeDisclosure(ctx_, empty, nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

TEST_F(VerificationTest, RateLimiterBlocksReplays) {
  TriggerRateLimiter limiter(/*max_triggers=*/2, /*window=*/1000000);
  dht::NodeId trigger = network_->directory().id(4);
  for (int i = 0; i < 2; ++i) {
    VerifierDecision d =
        VerifyBeforeDisclosure(ctx_, val_, &limiter, &trigger);
    EXPECT_TRUE(d.accepted) << i;
  }
  VerifierDecision blocked =
      VerifyBeforeDisclosure(ctx_, val_, &limiter, &trigger);
  EXPECT_FALSE(blocked.accepted);
  EXPECT_EQ(blocked.reason.code(), StatusCode::kPermissionDenied);
}

TEST_F(VerificationTest, RelocationCountIsAuthenticated) {
  // Lying about the relocation count moves the expected R2 and must fail.
  VerifiableActorList lied = val_;
  lied.relocations += 1;
  VerifierDecision decision =
      VerifyBeforeDisclosure(ctx_, lied, nullptr, nullptr);
  EXPECT_FALSE(decision.accepted);
}

}  // namespace
}  // namespace sep2p::core
