// Decode robustness for every application-layer payload in
// core/messages.h: truncation at every byte, trailing garbage, wrong-tag
// cross-decodes, empty input and arbitrary single-byte corruption must
// all be rejected (or at worst decode cleanly) — never crash, never
// return a half-parsed message.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "core/messages.h"
#include "crypto/sealed.h"
#include "crypto/sim_provider.h"
#include "util/rng.h"

namespace sep2p::core {
namespace {

struct Codec {
  std::string name;
  uint8_t tag = 0;
  std::vector<uint8_t> bytes;  // a valid encoding
  std::function<bool(const std::vector<uint8_t>&)> decodes;
};

crypto::SealedMessage MakeSealed(util::Rng& rng) {
  crypto::SimProvider provider;
  auto pair = provider.GenerateKeyPair(rng);
  return crypto::SealForRecipient(pair->pub, {1, 2, 3, 4}, rng);
}

template <typename T>
std::function<bool(const std::vector<uint8_t>&)> Decoder(
    Result<T> (*decode)(const std::vector<uint8_t>&)) {
  return [decode](const std::vector<uint8_t>& bytes) {
    return decode(bytes).ok();
  };
}

// One representative, non-degenerate instance of each of the 11
// application payloads (tags 0x20..0x2a).
std::vector<Codec> AllCodecs() {
  util::Rng rng(7);
  std::vector<Codec> codecs;

  msg::AppAck ack;
  codecs.push_back({"AppAck", msg::kTagAppAck, msg::Encode(ack),
                    Decoder(msg::DecodeAppAck)});

  msg::SensingContribution contribution;
  contribution.contribution_id = 0x0102030405060708ull;
  contribution.cell = 13;
  contribution.sealed = MakeSealed(rng);
  codecs.push_back({"SensingContribution", msg::kTagSensingContribution,
                    msg::Encode(contribution),
                    Decoder(msg::DecodeSensingContribution)});

  msg::SensingPartial partial;
  partial.da_slot = 3;
  partial.grid = 2;
  partial.sums = {1.5, -2.0, 0.0, 4.25};
  partial.counts = {3, 0, 1, 7};
  codecs.push_back({"SensingPartial", msg::kTagSensingPartial,
                    msg::Encode(partial), Decoder(msg::DecodeSensingPartial)});

  msg::ConceptStore store;
  store.posting_id = 42;
  store.share_key = {'p', 'i', 'l', 'o', 't', '#', '0'};
  store.share_x = 3;
  store.share_data = {9, 8, 7};
  codecs.push_back({"ConceptStore", msg::kTagConceptStore, msg::Encode(store),
                    Decoder(msg::DecodeConceptStore)});

  msg::ConceptQuery query;
  query.share_key = {'p', 'i', 'l', 'o', 't', '#', '1'};
  codecs.push_back({"ConceptQuery", msg::kTagConceptQuery, msg::Encode(query),
                    Decoder(msg::DecodeConceptQuery)});

  msg::ConceptShares shares;
  shares.posting_ids = {7, 9};
  shares.shares.push_back(crypto::SecretShare{1, {1, 2}});
  shares.shares.push_back(crypto::SecretShare{2, {3, 4}});
  codecs.push_back({"ConceptShares", msg::kTagConceptShares,
                    msg::Encode(shares), Decoder(msg::DecodeConceptShares)});

  msg::ProxyRelay relay;
  relay.contribution_id = 5;
  relay.recipient_index = 77;
  relay.sealed = MakeSealed(rng);
  codecs.push_back({"ProxyRelay", msg::kTagProxyRelay, msg::Encode(relay),
                    Decoder(msg::DecodeProxyRelay)});

  msg::SealedDelivery delivery;
  delivery.contribution_id = 6;
  delivery.sealed = MakeSealed(rng);
  codecs.push_back({"SealedDelivery", msg::kTagSealedDelivery,
                    msg::Encode(delivery), Decoder(msg::DecodeSealedDelivery)});

  msg::DiffusionOffer offer;
  offer.offer_id = 11;
  std::string expr = "pilot AND NOT retired";
  offer.expression.assign(expr.begin(), expr.end());
  offer.message = {'h', 'i'};
  codecs.push_back({"DiffusionOffer", msg::kTagDiffusionOffer,
                    msg::Encode(offer), Decoder(msg::DecodeDiffusionOffer)});

  msg::DiffusionAccept accept;
  accept.accepted = 1;
  codecs.push_back({"DiffusionAccept", msg::kTagDiffusionAccept,
                    msg::Encode(accept),
                    Decoder(msg::DecodeDiffusionAccept)});

  msg::QueryAnswer answer;
  answer.da_slot = 2;
  answer.count = 10;
  answer.sum = 33.5;
  answer.min = -1.0;
  answer.max = 9.0;
  codecs.push_back({"QueryAnswer", msg::kTagQueryAnswer, msg::Encode(answer),
                    Decoder(msg::DecodeQueryAnswer)});

  msg::QueryDeploy deploy;
  deploy.round_id = 0x0001000000000007ull;
  deploy.querier = 3;
  deploy.val = {0x10, 0x20, 0x30};  // opaque EncodeActorList bytes
  codecs.push_back({"QueryDeploy", msg::kTagQueryDeploy, msg::Encode(deploy),
                    Decoder(msg::DecodeQueryDeploy)});

  msg::QueryFlush flush;
  flush.round_id = 0x0001000000000007ull;
  flush.da_slot = 2;
  codecs.push_back({"QueryFlush", msg::kTagQueryFlush, msg::Encode(flush),
                    Decoder(msg::DecodeQueryFlush)});

  return codecs;
}

TEST(MessagesRobustnessTest, CoversEveryAppTag) {
  std::vector<Codec> codecs = AllCodecs();
  ASSERT_EQ(codecs.size(), 13u);
  // Contiguous tag coverage 0x20..0x2c, and PeekTag agrees on each.
  for (size_t i = 0; i < codecs.size(); ++i) {
    EXPECT_EQ(codecs[i].tag, 0x20 + i) << codecs[i].name;
    auto tag = msg::PeekTag(codecs[i].bytes);
    ASSERT_TRUE(tag.ok()) << codecs[i].name;
    EXPECT_EQ(*tag, codecs[i].tag) << codecs[i].name;
    EXPECT_TRUE(codecs[i].decodes(codecs[i].bytes)) << codecs[i].name;
  }
}

TEST(MessagesRobustnessTest, EveryStrictPrefixIsRejected) {
  for (const Codec& codec : AllCodecs()) {
    for (size_t len = 0; len < codec.bytes.size(); ++len) {
      std::vector<uint8_t> prefix(codec.bytes.begin(),
                                  codec.bytes.begin() + len);
      EXPECT_FALSE(codec.decodes(prefix))
          << codec.name << " accepted a " << len << "-byte prefix of "
          << codec.bytes.size();
    }
  }
}

TEST(MessagesRobustnessTest, TrailingBytesAreRejected) {
  for (const Codec& codec : AllCodecs()) {
    std::vector<uint8_t> padded = codec.bytes;
    padded.push_back(0x00);
    EXPECT_FALSE(codec.decodes(padded)) << codec.name;
    padded.back() = 0xff;
    EXPECT_FALSE(codec.decodes(padded)) << codec.name;
  }
}

TEST(MessagesRobustnessTest, WrongTagCrossDecodesAreRejected) {
  std::vector<Codec> codecs = AllCodecs();
  for (const Codec& payload : codecs) {
    for (const Codec& decoder : codecs) {
      if (payload.tag == decoder.tag) continue;
      EXPECT_FALSE(decoder.decodes(payload.bytes))
          << decoder.name << " accepted " << payload.name << " bytes";
    }
  }
}

TEST(MessagesRobustnessTest, CorruptedMagicIsRejected) {
  for (const Codec& codec : AllCodecs()) {
    std::vector<uint8_t> bad = codec.bytes;
    bad[0] ^= 0xff;
    EXPECT_FALSE(codec.decodes(bad)) << codec.name;
    EXPECT_FALSE(msg::PeekTag(bad).ok()) << codec.name;
  }
}

TEST(MessagesRobustnessTest, SingleBitFlipsNeverCrashTheDecoder) {
  // Flipping any one bit anywhere must leave the decoder in one of two
  // states: clean rejection, or a successful decode (flips inside value
  // bytes can be legitimate payloads) — never a crash or a hang.
  for (const Codec& codec : AllCodecs()) {
    for (size_t byte = 0; byte < codec.bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> flipped = codec.bytes;
        flipped[byte] ^= static_cast<uint8_t>(1u << bit);
        (void)codec.decodes(flipped);
        (void)msg::PeekTag(flipped);
      }
    }
  }
}

TEST(MessagesRobustnessTest, EmptyInputIsRejectedEverywhere) {
  for (const Codec& codec : AllCodecs()) {
    EXPECT_FALSE(codec.decodes({})) << codec.name;
  }
  EXPECT_FALSE(msg::PeekTag({}).ok());
}

// ---------------------------------------------------------------------
// Wire-contract versioning (DESIGN.md §14): the selection messages that
// grew remote-run fields encode their DEFAULTS as version 1 — byte-for-
// byte what the pre-refactor code produced, which is what keeps sim
// traces bit-identical — and only non-default values produce version 2.
// Decoders accept both.

TEST(MessagesVersioningTest, DefaultFieldsEncodeAsVersionOne) {
  // The only wire difference a nonce makes is the appended u64 (plus
  // the version bump in the shared header): v2 bytes are exactly 8
  // longer, and nothing before the header's version field drifts.
  {
    msg::VrandInvite v1;
    v1.rs1 = 0.25;
    v1.timestamp = 99;
    msg::VrandInvite v2 = v1;
    v2.nonce = 0x0002000000000001ull;
    std::vector<uint8_t> b1 = msg::Encode(v1);
    std::vector<uint8_t> b2 = msg::Encode(v2);
    EXPECT_EQ(b2.size(), b1.size() + 8);
    EXPECT_TRUE(std::equal(b1.begin(), b1.begin() + 4, b2.begin()));
  }
  {
    msg::SlEngage v1;
    v1.vrnd = {1, 2, 3};
    msg::SlEngage v2 = v1;
    v2.nonce = 7;
    EXPECT_EQ(msg::Encode(v2).size(), msg::Encode(v1).size() + 8);
  }
  {
    msg::CommitList v1;
    v1.commitments.resize(3);
    v1.timestamp = 5;
    msg::CommitList v2 = v1;
    v2.nonce = 7;
    EXPECT_EQ(msg::Encode(v2).size(), msg::Encode(v1).size() + 8);
  }
}

TEST(MessagesVersioningTest, NonDefaultFieldsRoundTripAsVersionTwo) {
  msg::VrandInvite invite;
  invite.rs1 = 0.125;
  invite.timestamp = 123;
  invite.nonce = 0x0003000000000042ull;
  auto invite_rt = msg::DecodeVrandInvite(msg::Encode(invite));
  ASSERT_TRUE(invite_rt.ok());
  EXPECT_EQ(invite_rt->nonce, invite.nonce);
  EXPECT_EQ(invite_rt->rs1, invite.rs1);
  EXPECT_EQ(invite_rt->timestamp, invite.timestamp);

  msg::CommitList list;
  list.commitments.resize(2);
  list.timestamp = 9;
  list.nonce = 17;
  auto list_rt = msg::DecodeCommitList(msg::Encode(list));
  ASSERT_TRUE(list_rt.ok());
  EXPECT_EQ(list_rt->nonce, list.nonce);
  EXPECT_EQ(list_rt->commitments.size(), list.commitments.size());

  msg::SlEngage engage;
  engage.vrnd = {9, 8, 7, 6};
  engage.nonce = 0x0001000000000009ull;
  auto engage_rt = msg::DecodeSlEngage(msg::Encode(engage));
  ASSERT_TRUE(engage_rt.ok());
  EXPECT_EQ(engage_rt->nonce, engage.nonce);
  EXPECT_EQ(engage_rt->vrnd, engage.vrnd);

  msg::AttestRequest attest;
  attest.preimage = {'v', 'a', 'l'};
  auto attest_rt = msg::DecodeAttestRequest(msg::Encode(attest));
  ASSERT_TRUE(attest_rt.ok());
  EXPECT_EQ(attest_rt->preimage, attest.preimage);
  EXPECT_EQ(attest_rt->digest, attest.digest);
}

TEST(MessagesVersioningTest, VersionOneBytesDecodeWithDefaultedFields) {
  // A v1 peer's bytes (defaults omitted on the wire) decode on a v2
  // node with the new fields at their defaults.
  msg::VrandInvite invite;
  invite.rs1 = 0.5;
  invite.timestamp = 4;  // nonce stays 0 → v1 bytes
  auto invite_rt = msg::DecodeVrandInvite(msg::Encode(invite));
  ASSERT_TRUE(invite_rt.ok());
  EXPECT_EQ(invite_rt->nonce, 0u);

  msg::AttestRequest attest;  // empty preimage → v1 bytes
  auto attest_rt = msg::DecodeAttestRequest(msg::Encode(attest));
  ASSERT_TRUE(attest_rt.ok());
  EXPECT_TRUE(attest_rt->preimage.empty());
}

TEST(MessagesVersioningTest, VersionedPrefixesStillRejected) {
  // The robustness sweep above covers v1 bytes; repeat the prefix sweep
  // for the v2 shapes.
  msg::SlEngage engage;
  engage.vrnd = {1, 2};
  engage.nonce = 3;
  std::vector<uint8_t> bytes = msg::Encode(engage);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(msg::DecodeSlEngage(prefix).ok()) << len;
  }
  msg::AttestRequest attest;
  attest.preimage = {5, 6, 7, 8};
  bytes = msg::Encode(attest);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(msg::DecodeAttestRequest(prefix).ok()) << len;
  }
}

}  // namespace
}  // namespace sep2p::core
