#include "apps/proxy.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

TEST(SealedMessageTest, RecipientOpensSuccessfully) {
  crypto::SimProvider provider;
  util::Rng rng(1);
  auto pair = provider.GenerateKeyPair(rng);
  std::vector<uint8_t> payload{1, 2, 3, 4, 5, 6, 7};
  SealedMessage sealed = SealForRecipient(pair->pub, payload, rng);
  auto opened = OpenSealed(provider, sealed, pair->priv);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
}

TEST(SealedMessageTest, CiphertextDiffersFromPlaintext) {
  crypto::SimProvider provider;
  util::Rng rng(2);
  auto pair = provider.GenerateKeyPair(rng);
  std::vector<uint8_t> payload(100, 0xab);
  SealedMessage sealed = SealForRecipient(pair->pub, payload, rng);
  EXPECT_NE(sealed.ciphertext, payload);
}

TEST(SealedMessageTest, FreshNoncePerMessage) {
  crypto::SimProvider provider;
  util::Rng rng(3);
  auto pair = provider.GenerateKeyPair(rng);
  std::vector<uint8_t> payload{9, 9};
  SealedMessage a = SealForRecipient(pair->pub, payload, rng);
  SealedMessage b = SealForRecipient(pair->pub, payload, rng);
  EXPECT_NE(a.nonce, b.nonce);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST(SealedMessageTest, WrongPrivateKeyDenied) {
  crypto::SimProvider provider;
  util::Rng rng(4);
  auto recipient = provider.GenerateKeyPair(rng);
  auto intruder = provider.GenerateKeyPair(rng);
  SealedMessage sealed =
      SealForRecipient(recipient->pub, {1, 2, 3}, rng);
  auto opened = OpenSealed(provider, sealed, intruder->priv);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST(SealedMessageTest, MultiBlockPayloadRoundTrips) {
  crypto::SimProvider provider;
  util::Rng rng(5);
  auto pair = provider.GenerateKeyPair(rng);
  std::vector<uint8_t> payload(1000);
  rng.FillBytes(payload.data(), payload.size());
  SealedMessage sealed = SealForRecipient(pair->pub, payload, rng);
  auto opened = OpenSealed(provider, sealed, pair->priv);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
}

TEST(ProxyTest, DeliveryEnforcesKnowledgeSeparation) {
  auto network = test::MakeNetwork(500, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(500);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(6);
  const crypto::PublicKey recipient_pub = network->directory().pub(33);
  auto delivery = ForwardViaProxy(runtime, *network, /*sender=*/7,
                                  recipient_pub, {1, 2, 3}, rng);
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  EXPECT_TRUE(delivery->relayed);
  EXPECT_TRUE(delivery->delivered_ok);
  EXPECT_TRUE(delivery->proxy_saw_sender);
  EXPECT_FALSE(delivery->proxy_saw_payload);
  EXPECT_FALSE(delivery->recipient_saw_sender);
  EXPECT_NE(delivery->proxy_index, 7u);
  EXPECT_NE(delivery->proxy_index, 33u);
  EXPECT_DOUBLE_EQ(delivery->cost.msg_work, 2.0);

  // Only the recipient opens the payload.
  auto opened = OpenSealed(network->provider(), delivery->delivered,
                           network->directory().priv(33));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(ProxyTest, BothPartiesColludingIsRare) {
  // (C/N)^2 argument from the paper: count proxy+recipient collusions
  // across many deliveries with 5% colluders.
  auto network = test::MakeNetwork(500, 0.05);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(500);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(8);
  const auto& dir = network->directory();
  int both_colluding = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    uint32_t recipient_index = rng.NextUint64(dir.size());
    if (recipient_index == 7) continue;
    auto delivery = ForwardViaProxy(runtime, *network, 7,
                                    dir.pub(recipient_index), {1}, rng);
    ASSERT_TRUE(delivery.ok());
    if (dir.colluding(delivery->proxy_index) &&
        dir.colluding(recipient_index)) {
      ++both_colluding;
    }
  }
  // Expectation ~ kTrials * 0.05^2 = 0.75; demand well under 5%.
  EXPECT_LT(both_colluding, kTrials / 20);
}

TEST(ProxyTest, UnknownRecipientFails) {
  auto network = test::MakeNetwork(100, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(100);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(9);
  crypto::PublicKey stranger{};
  stranger[5] = 0x55;
  auto delivery = ForwardViaProxy(runtime, *network, 3, stranger, {1}, rng);
  EXPECT_FALSE(delivery.ok());
}

TEST(ProxyTest, DeadProxyLeavesRelayedFalse) {
  auto network = test::MakeNetwork(100, 0.0);
  ASSERT_NE(network, nullptr);
  // Every link drops everything: the relay leg must exhaust its retries.
  net::SimNetwork simnet = test::MakeSimNet(100, /*drop=*/1.0);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(10);
  const crypto::PublicKey recipient_pub = network->directory().pub(12);
  auto delivery =
      ForwardViaProxy(runtime, *network, 3, recipient_pub, {1}, rng);
  ASSERT_TRUE(delivery.ok());
  EXPECT_FALSE(delivery->relayed);
  EXPECT_FALSE(delivery->delivered_ok);
  EXPECT_GT(simnet.stats().rpc_failures, 0u);
  // The logical cost still counts the attempted message.
  EXPECT_DOUBLE_EQ(delivery->cost.msg_work, 1.0);
}


TEST(ProxyChainTest, ChainHasDistinctRelaysExcludingEndpoints) {
  auto network = test::MakeNetwork(300, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(300);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(21);
  const crypto::PublicKey recipient_pub = network->directory().pub(50);
  auto delivery = ForwardViaProxyChain(runtime, *network, 7, recipient_pub,
                                       {1, 2, 3}, /*chain_length=*/4, rng);
  ASSERT_TRUE(delivery.ok()) << delivery.status().ToString();
  EXPECT_TRUE(delivery->delivered_ok);
  EXPECT_EQ(delivery->chain.size(), 4u);
  std::set<uint32_t> unique(delivery->chain.begin(),
                            delivery->chain.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(unique.count(7), 0u);
  EXPECT_EQ(unique.count(50), 0u);
  EXPECT_DOUBLE_EQ(delivery->cost.msg_work, 5.0);
}

TEST(ProxyChainTest, OnlyEndsOfChainSeeEndpoints) {
  auto network = test::MakeNetwork(300, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(300);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(23);
  const crypto::PublicKey recipient_pub = network->directory().pub(9);
  auto delivery = ForwardViaProxyChain(runtime, *network, 4, recipient_pub,
                                       {8}, 3, rng);
  ASSERT_TRUE(delivery.ok());
  EXPECT_TRUE(delivery->relay_saw_sender[0]);
  EXPECT_FALSE(delivery->relay_saw_sender[1]);
  EXPECT_FALSE(delivery->relay_saw_sender[2]);
  EXPECT_FALSE(delivery->relay_saw_recipient[0]);
  EXPECT_FALSE(delivery->relay_saw_recipient[1]);
  EXPECT_TRUE(delivery->relay_saw_recipient[2]);
}

TEST(ProxyChainTest, PayloadStaysSealedAcrossChain) {
  auto network = test::MakeNetwork(300, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(300);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(25);
  const crypto::PublicKey recipient_pub = network->directory().pub(11);
  std::vector<uint8_t> payload{9, 8, 7, 6};
  auto delivery = ForwardViaProxyChain(runtime, *network, 4, recipient_pub,
                                       payload, 2, rng);
  ASSERT_TRUE(delivery.ok());
  // A relay cannot open it...
  EXPECT_FALSE(OpenSealed(network->provider(), delivery->delivered,
                          network->directory().priv(delivery->chain[0]))
                   .ok());
  // ...the recipient can.
  auto opened = OpenSealed(network->provider(), delivery->delivered,
                           network->directory().priv(11));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
}

TEST(ProxyChainTest, DegenerateParametersRejected) {
  auto network = test::MakeNetwork(64, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(64);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(27);
  const crypto::PublicKey recipient_pub = network->directory().pub(5);
  EXPECT_FALSE(
      ForwardViaProxyChain(runtime, *network, 1, recipient_pub, {1}, 0, rng)
          .ok());
  EXPECT_FALSE(
      ForwardViaProxyChain(runtime, *network, 1, recipient_pub, {1}, 64, rng)
          .ok());
}

}  // namespace
}  // namespace sep2p::apps
