// Active-adversary subsystem: the adversary sweep is bit-identical for
// any thread count; colluder placement is the SAME rule for the live
// network and the closed-form model; installing no-op attack hooks
// perturbs nothing; and each scenario honours its detection contract
// (sybils never admitted, equivocation always caught, grinding strikes
// always attributable).

#include "attack/scenario.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attack/oracle.h"
#include "attack/sweep.h"
#include "core/attack_hooks.h"
#include "core/selection.h"
#include "sim/network.h"
#include "strategies/adversary.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sep2p {
namespace {

sim::Parameters SweepParams() {
  sim::Parameters params;
  params.n = 1000;
  params.colluding_fraction = 0.10;
  params.cache_size = 128;
  params.actor_count = 8;
  params.seed = 42;
  return params;
}

// ------------------------------------------- determinism

TEST(AdversarySweepTest, AdversarySweepIsThreadInvariant) {
  const std::vector<std::string> names = {"none", "csar-grind", "sl-forge"};
  auto digests = [&](int threads) {
    sim::Parameters params = SweepParams();
    params.threads = threads;
    auto points = attack::RunAdversarySweep(params, names, /*trials=*/18);
    EXPECT_TRUE(points.ok()) << points.status().ToString();
    std::vector<uint64_t> out;
    if (points.ok()) {
      for (const attack::AdversaryPoint& p : *points) out.push_back(p.digest);
    }
    return out;
  };
  std::vector<uint64_t> single = digests(1);
  ASSERT_EQ(single.size(), names.size());
  EXPECT_EQ(single, digests(4));
}

// ------------------------------------------- colluder-sampling parity

// The live network's epoch reassignment and the closed-form adversary
// model must mark the IDENTICAL coalition for the same seed — the
// attack sweep's bias figures are only comparable to the analytic
// effectiveness curves under this parity.
TEST(AdversarySweepTest, ColluderSamplingParity) {
  auto network = test::MakeNetwork(/*n=*/1500, /*c_fraction=*/0.05);
  ASSERT_NE(network, nullptr);

  util::Rng net_rng(123);
  network->ReassignColluders(net_rng);

  util::Rng model_rng(123);
  std::vector<uint32_t> expected = strategies::SampleColluders(
      network->directory(), network->params().c(), model_rng);

  EXPECT_EQ(network->ColluderIndices(), expected);
  ASSERT_FALSE(expected.empty());
  // The directory flags agree with the sampled set, and only with it.
  size_t flagged = 0;
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    if (network->directory().colluding(i)) ++flagged;
  }
  EXPECT_EQ(flagged, expected.size());
  for (uint32_t idx : expected) {
    EXPECT_TRUE(network->directory().colluding(idx));
  }
}

// ------------------------------------------- hooks are pure seams

// A default-constructed AttackHooks answers "behave honestly" at every
// seam; installing it must leave the selection byte-identical to the
// hook-free path (same outcome, same RNG consumption).
TEST(AdversarySweepTest, NoOpAttackHooksDoNotPerturbSelection) {
  auto network = test::MakeNetwork(/*n=*/1200, /*c_fraction=*/0.05);
  ASSERT_NE(network, nullptr);
  core::ProtocolContext ctx = network->context();
  core::SelectionProtocol protocol(ctx);

  core::AttackHooks noop;
  auto run = [&](core::AttackHooks* hooks) {
    util::Rng rng(99);
    core::SelectionOptions options;
    options.attack = hooks;
    auto outcome = protocol.Run(/*trigger_index=*/7, rng, options);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return std::make_tuple(
        outcome.ok() ? outcome->actor_indices : std::vector<uint32_t>{},
        outcome.ok() ? outcome->setter_index : 0u,
        outcome.ok() ? outcome->sl_indices : std::vector<uint32_t>{},
        outcome.ok() ? outcome->cost.crypto_work : -1.0,
        outcome.ok() ? outcome->cost.msg_work : -1.0,
        rng.NextUint64(1u << 30));  // stream position unchanged too
  };
  EXPECT_EQ(run(nullptr), run(&noop));
}

// ------------------------------------------- scenario contracts

class ScenarioContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/1200, /*c_fraction=*/0.10,
                                 /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
    util::Rng rng(7);
    network_->ReassignColluders(rng);
  }

  // Runs `name` for `trials` triggers and returns every outcome,
  // each judged through the oracle against its own trace.
  std::vector<attack::AttackOutcome> RunTrials(const std::string& name,
                                               int trials) {
    std::vector<attack::AttackOutcome> outcomes;
    util::Rng rng(31);
    for (int t = 0; t < trials; ++t) {
      auto scenario =
          attack::MakeScenario(name, ctx_, network_->ColluderIndices());
      EXPECT_NE(scenario, nullptr) << name;
      obs::TraceRecorder rec;
      rec.meta().node_count =
          static_cast<uint32_t>(network_->directory().size());
      uint32_t trigger = static_cast<uint32_t>(
          rng.NextUint64(network_->directory().size()));
      auto run = scenario->Run(trigger, rng, &rec, nullptr);
      EXPECT_TRUE(run.ok()) << name << ": " << run.status().ToString();
      if (!run.ok()) continue;
      attack::Verdict verdict = attack::Judge(*run, &rec.trace());
      attack::AttackOutcome outcome = *run;
      outcome.detected = verdict.detected;
      outcomes.push_back(outcome);
    }
    return outcomes;
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
};

TEST_F(ScenarioContractTest, RegistryCoversEveryNameOnce) {
  const std::vector<std::string>& names = attack::ScenarioNames();
  ASSERT_GE(names.size(), 6u);  // "none" + at least five attacks
  EXPECT_EQ(names.front(), "none");
  for (const std::string& name : names) {
    auto scenario =
        attack::MakeScenario(name, ctx_, network_->ColluderIndices());
    ASSERT_NE(scenario, nullptr) << name;
    EXPECT_EQ(scenario->name(), name);
  }
  EXPECT_EQ(attack::MakeScenario("no-such-attack", ctx_,
                                 network_->ColluderIndices()),
            nullptr);
}

TEST_F(ScenarioContractTest, HonestBaselineIsCleanAndAccepted) {
  for (const attack::AttackOutcome& o : RunTrials("none", 6)) {
    EXPECT_FALSE(o.attempted);
    EXPECT_FALSE(o.detected);
    EXPECT_FALSE(o.succeeded);
    EXPECT_TRUE(o.accepted);
    EXPECT_EQ(o.strikes, 0);
  }
}

TEST_F(ScenarioContractTest, SybilsAreAlwaysDetectedAndNeverAdmitted) {
  bool any_attempted = false;
  for (const attack::AttackOutcome& o : RunTrials("sybil-join", 6)) {
    any_attempted |= o.attempted;
    EXPECT_TRUE(o.detected);
    EXPECT_FALSE(o.accepted);
    EXPECT_FALSE(o.succeeded);
    EXPECT_FALSE(o.detection_signal.empty());
  }
  EXPECT_TRUE(any_attempted);
}

TEST_F(ScenarioContractTest, EquivocationIsAlwaysCaughtWhenAttempted) {
  for (const attack::AttackOutcome& o : RunTrials("equivocate", 8)) {
    if (!o.attempted) continue;  // no colluder in the distribution path
    EXPECT_TRUE(o.detected);
    EXPECT_FALSE(o.succeeded);
  }
}

TEST_F(ScenarioContractTest, GrindStrikesAreAttributable) {
  for (const attack::AttackOutcome& o : RunTrials("csar-grind", 8)) {
    if (o.strikes == 0) continue;
    // Every withheld reveal is an attributable abort: it is detected
    // and forced exactly one fresh-RND_T restart.
    EXPECT_TRUE(o.detected);
    EXPECT_EQ(o.restarts, o.strikes);
  }
}

TEST_F(ScenarioContractTest, FailedForgeryIsDetected) {
  for (const attack::AttackOutcome& o : RunTrials("sl-forge", 8)) {
    if (o.attempted && !o.succeeded) {
      EXPECT_TRUE(o.detected);
    }
    // A successful forgery requires the full quorum: it verifies clean.
    if (o.succeeded) {
      EXPECT_TRUE(o.accepted);
    }
  }
}

}  // namespace
}  // namespace sep2p
