#include "crypto/hash256.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sep2p::crypto {
namespace {

TEST(Hash256Test, ZeroIsAllZero) {
  Hash256 z = Hash256::Zero();
  for (uint8_t b : z.bytes()) EXPECT_EQ(b, 0);
  EXPECT_EQ(z.ring_pos(), static_cast<RingPos>(0));
}

TEST(Hash256Test, OfHashesContent) {
  Hash256 a = Hash256::Of("hello");
  Hash256 b = Hash256::Of("hello");
  Hash256 c = Hash256::Of("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Hash256Test, XorProperties) {
  Hash256 a = Hash256::Of("a"), b = Hash256::Of("b");
  EXPECT_EQ(a.Xor(a), Hash256::Zero());
  EXPECT_EQ(a.Xor(b), b.Xor(a));
  EXPECT_EQ(a.Xor(Hash256::Zero()), a);
  EXPECT_EQ(a.Xor(b).Xor(b), a);
}

TEST(Hash256Test, RingPosUsesTop128BitsBigEndian) {
  Hash256 h;
  h.bytes()[0] = 0x80;  // most significant bit of the ring position
  EXPECT_EQ(h.ring_pos(), static_cast<RingPos>(1) << 127);
  Hash256 low;
  low.bytes()[15] = 0x01;  // least significant ring byte
  EXPECT_EQ(low.ring_pos(), static_cast<RingPos>(1));
  Hash256 ignored;
  ignored.bytes()[16] = 0xff;  // beyond the geometric prefix
  EXPECT_EQ(ignored.ring_pos(), static_cast<RingPos>(0));
}

TEST(Hash256Test, FromRingPosRoundTrips) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    RingPos pos = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                  rng.NextUint64();
    EXPECT_EQ(Hash256::FromRingPos(pos).ring_pos(), pos);
  }
}

TEST(Hash256Test, HexFormatting) {
  Hash256 z = Hash256::Zero();
  EXPECT_EQ(z.ToHex(), std::string(64, '0'));
  EXPECT_EQ(z.ShortHex(), "00000000");
  EXPECT_EQ(Hash256::Of("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hash256Test, RehashChainsDiffer) {
  Hash256 h = Hash256::Of("seed");
  Hash256 h1 = h.Rehash();
  Hash256 h2 = h1.Rehash();
  EXPECT_NE(h, h1);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h.Rehash(), h1);  // deterministic
}

TEST(RingDistanceTest, ClockwiseWraps) {
  RingPos a = 10, b = 3;
  // From 10 clockwise to 3 wraps nearly the whole ring.
  EXPECT_EQ(ClockwiseDistance(b, a), static_cast<RingPos>(7));
  EXPECT_EQ(ClockwiseDistance(a, b), static_cast<RingPos>(0) - 7);
}

TEST(RingDistanceTest, MinimalDistanceSymmetric) {
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    RingPos a = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                rng.NextUint64();
    RingPos b = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                rng.NextUint64();
    EXPECT_EQ(RingDistance(a, b), RingDistance(b, a));
    EXPECT_LE(RingDistance(a, b), static_cast<RingPos>(1) << 127);
    EXPECT_EQ(RingDistance(a, a), static_cast<RingPos>(0));
  }
}

TEST(RingDistanceTest, AntipodalIsHalfRing) {
  RingPos a = 0;
  RingPos b = static_cast<RingPos>(1) << 127;
  EXPECT_EQ(RingDistance(a, b), b);
}

}  // namespace
}  // namespace sep2p::crypto
