#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace sep2p::crypto {
namespace {

std::string HmacHex(const std::string& key_hex, const std::string& msg) {
  auto key = util::FromHex(key_hex);
  Digest mac = HmacSha256(key->data(), key->size(),
                          reinterpret_cast<const uint8_t*>(msg.data()),
                          msg.size());
  return util::ToHex(mac.data(), mac.size());
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  EXPECT_EQ(HmacHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  // key = "Jefe", data = "what do ya want for nothing?"
  EXPECT_EQ(HmacHex("4a656665", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  std::string key(20 * 2, 'a');  // 20 bytes of 0xaa
  for (size_t i = 0; i < key.size(); ++i) key[i] = 'a';
  std::string data(50, static_cast<char>(0xdd));
  auto key_bytes = util::FromHex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  Digest mac = HmacSha256(key_bytes->data(), key_bytes->size(),
                          reinterpret_cast<const uint8_t*>(data.data()),
                          data.size());
  EXPECT_EQ(util::ToHex(mac.data(), mac.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key of 0xaa.
  std::string key_hex;
  for (int i = 0; i < 131; ++i) key_hex += "aa";
  EXPECT_EQ(HmacHex(key_hex, "Test Using Larger Than Block-Size Key - "
                             "Hash Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  std::vector<uint8_t> msg{1, 2, 3};
  Digest a = HmacSha256(std::vector<uint8_t>{1}, msg);
  Digest b = HmacSha256(std::vector<uint8_t>{2}, msg);
  EXPECT_NE(a, b);
}

TEST(HmacTest, DifferentMessagesDifferentMacs) {
  std::vector<uint8_t> key{9, 9, 9};
  Digest a = HmacSha256(key, std::vector<uint8_t>{1});
  Digest b = HmacSha256(key, std::vector<uint8_t>{2});
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sep2p::crypto
