#include "node/join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dht/region.h"
#include "node/node_cache.h"
#include "tests/test_util.h"

namespace sep2p::node {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/2000, /*c_fraction=*/0.01,
                                 /*cache=*/200);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
  util::Rng rng_{41};
};

TEST_F(JoinTest, AttestedCacheVerifies) {
  JoinProtocol join(ctx_);
  auto cache = join.AttestCache(15, rng_);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_GE(cache->k(), 2);
  EXPECT_FALSE(cache->entries.empty());
  auto cost = VerifyAttestedCache(ctx_, *cache);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * cache->k() + 1);
}

TEST_F(JoinTest, AttestedEntriesMatchTheOwnersRealCache) {
  JoinProtocol join(ctx_);
  auto cache = join.AttestCache(99, rng_);
  ASSERT_TRUE(cache.ok());
  NodeCache truth(&network_->directory(), 99, ctx_.rs3);
  std::vector<crypto::PublicKey> expected;
  for (uint32_t idx : truth.Entries()) {
    expected.push_back(network_->directory().pub(idx));
  }
  EXPECT_EQ(cache->entries, expected);
}

TEST_F(JoinTest, TamperedEntryListRejected) {
  JoinProtocol join(ctx_);
  auto cache = join.AttestCache(15, rng_);
  ASSERT_TRUE(cache.ok());
  AttestedCache forged = *cache;
  // Sneak a fabricated node (a Sybil) into the attested cache.
  crypto::PublicKey fake{};
  fake[3] = 0x33;
  forged.entries.push_back(fake);
  EXPECT_FALSE(VerifyAttestedCache(ctx_, forged).ok());
}

TEST_F(JoinTest, ForeignAttestorRejected) {
  JoinProtocol join(ctx_);
  auto cache = join.AttestCache(15, rng_);
  ASSERT_TRUE(cache.ok());
  // A node far from the owner signs the same bytes — legit signature,
  // wrong region.
  const dht::Directory& dir = network_->directory();
  dht::Region r1 = dht::Region::Centered(dir.pos(15), cache->rs1);
  uint32_t outsider = 0;
  for (uint32_t i = 0; i < dir.size(); ++i) {
    if (!r1.Contains(dir.pos(i))) {
      outsider = i;
      break;
    }
  }
  auto sig = ctx_.SignAs(outsider, cache->SignedBytes());
  ASSERT_TRUE(sig.ok());
  AttestedCache forged = *cache;
  forged.attestations[0] = {dir.cert(outsider), *sig};
  EXPECT_FALSE(VerifyAttestedCache(ctx_, forged).ok());
}

TEST_F(JoinTest, StaleAttestationRejected) {
  JoinProtocol join(ctx_);
  auto cache = join.AttestCache(15, rng_);
  ASSERT_TRUE(cache.ok());
  core::ProtocolContext later = ctx_;
  later.now = ctx_.now + ctx_.max_timestamp_age + 1;
  EXPECT_FALSE(VerifyAttestedCache(later, *cache).ok());
}

TEST_F(JoinTest, JoinBuildsNearCompleteValidCache) {
  JoinProtocol join(ctx_);
  const uint32_t newcomer = 777;
  auto outcome = join.Join(newcomer, rng_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // Everything in the joined cache is genuinely legitimate w.r.t. the
  // newcomer's coverage (validity)...
  NodeCache truth(&network_->directory(), newcomer, ctx_.rs3);
  std::vector<uint32_t> expected = truth.Entries();
  std::sort(expected.begin(), expected.end());
  for (uint32_t idx : outcome->cache) {
    EXPECT_TRUE(std::binary_search(expected.begin(), expected.end(), idx));
  }
  // ...and covers nearly all of it (the neighbors' caches overlap the
  // newcomer's region except for slivers at the far edges).
  EXPECT_GE(outcome->cache.size(), expected.size() * 8 / 10);
}

TEST_F(JoinTest, JoinCostsScaleWithCoverage) {
  JoinProtocol join(ctx_);
  auto outcome = join.Join(42, rng_);
  ASSERT_TRUE(outcome.ok());
  // Announcement dominates: ~cache_size certificate checks.
  EXPECT_GT(outcome->cost.crypto_work, 100);   // ~200-entry coverage
  EXPECT_GT(outcome->cost.msg_work, 100);
  // But the newcomer's own critical path stays short.
  EXPECT_LT(outcome->cost.crypto_latency, 40);
}

TEST_F(JoinTest, NeighborsAreAdjacentOnTheRing) {
  JoinProtocol join(ctx_);
  auto outcome = join.Join(100, rng_);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome->successor, 100u);
  EXPECT_NE(outcome->predecessor, 100u);
  EXPECT_NE(outcome->successor, outcome->predecessor);
}

}  // namespace
}  // namespace sep2p::node
