#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sep2p::util {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);

  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(97, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 97 * 96 / 2);
  }
}

TEST(ThreadPoolTest, GrainLargerThanCountStillCoversEverything) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(5);
  pool.ParallelFor(
      5,
      [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/64);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);

  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> executors;
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i) {
    executors.insert(std::this_thread::get_id());
    order.push_back(i);
  });
  ASSERT_EQ(executors.size(), 1u);
  EXPECT_EQ(*executors.begin(), caller);
  // Inline mode is a plain loop: in-order execution.
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, NegativeWorkersClampToZero) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.workers(), 0);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, OneWorkerCompletesAllWork) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  std::atomic<int> count{0};
  pool.ParallelFor(1000, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000,
                       [&](size_t i) {
                         if (i == 123) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromInlineMode) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.ParallelFor(
                   10, [&](size_t) { throw std::runtime_error("inline"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolSurvivesAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   100, [&](size_t) { throw std::runtime_error("first"); }),
               std::runtime_error);
  // The failed job must be fully retired; the next one runs normally.
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ResolveThreadsTakesPositiveLiterally) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  // 0 and negatives mean "one per hardware thread", at least 1.
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-5), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), ThreadPool::ResolveThreads(-5));
}

}  // namespace
}  // namespace sep2p::util
