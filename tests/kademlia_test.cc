#include "dht/kademlia.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/selection.h"
#include "core/verification.h"

#include "sim/metrics.h"
#include "tests/test_util.h"

namespace sep2p::dht {
namespace {

RingPos RandomPos(util::Rng& rng) {
  return (static_cast<RingPos>(rng.NextUint64()) << 64) | rng.NextUint64();
}

TEST(KademliaTest, XorNearestMatchesBruteForce) {
  auto dir = test::MakeDirectory(600);
  KademliaOverlay kad(dir.get());
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    RingPos target = RandomPos(rng);
    auto fast = kad.XorNearest(target);
    ASSERT_TRUE(fast.has_value());

    uint32_t best = 0;
    RingPos best_distance = ~static_cast<RingPos>(0);
    for (uint32_t i = 0; i < dir->size(); ++i) {
      RingPos d = KademliaOverlay::XorDistance(dir->pos(i), target);
      if (d < best_distance) {
        best_distance = d;
        best = i;
      }
    }
    EXPECT_EQ(*fast, best) << "trial " << trial;
  }
}

TEST(KademliaTest, XorNearestInIntervalRespectsBounds) {
  auto dir = test::MakeDirectory(400);
  KademliaOverlay kad(dir.get());
  util::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    // Random dyadic interval of width 2^120 (about 1/256 of the space).
    int shift = 120;
    RingPos lo = RandomPos(rng) & ~((static_cast<RingPos>(1) << shift) - 1);
    RingPos hi = lo + (static_cast<RingPos>(1) << shift);
    RingPos target = RandomPos(rng);
    auto found = kad.XorNearestInInterval(target, lo, hi);
    if (!found.has_value()) continue;
    RingPos pos = dir->pos(*found);
    EXPECT_GE(pos, lo);
    if (hi != 0) {
      EXPECT_LT(pos, hi);  // hi == 0: interval ends at 2^128
    }
    // Optimality within the interval (brute force).
    for (uint32_t i = 0; i < dir->size(); ++i) {
      RingPos p = dir->pos(i);
      if (p < lo || (hi != 0 && p >= hi)) continue;
      EXPECT_LE(KademliaOverlay::XorDistance(pos, target),
                KademliaOverlay::XorDistance(p, target));
    }
  }
}

TEST(KademliaTest, RouteReachesXorOwner) {
  auto dir = test::MakeDirectory(1000);
  KademliaOverlay kad(dir.get());
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t from = rng.NextUint64(dir->size());
    NodeId key = NodeId::Of("key-" + std::to_string(trial));
    auto route = kad.RouteKey(from, key);
    ASSERT_TRUE(route.ok()) << route.status().ToString();
    auto owner = kad.XorNearest(key.ring_pos());
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(route->dest_index, *owner);
  }
}

TEST(KademliaTest, RouteToOwnKeyIsZeroHops) {
  auto dir = test::MakeDirectory(300);
  KademliaOverlay kad(dir.get());
  for (uint32_t i = 0; i < dir->size(); i += 37) {
    auto route = kad.RouteKey(i, dir->id(i));
    ASSERT_TRUE(route.ok());
    EXPECT_EQ(route->dest_index, i);
    EXPECT_EQ(route->hops, 0);
  }
}

TEST(KademliaTest, HopCountIsLogarithmic) {
  auto dir = test::MakeDirectory(4096);
  KademliaOverlay kad(dir.get());
  util::Rng rng(4);
  sim::OnlineStats hops;
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t from = rng.NextUint64(dir->size());
    NodeId key = NodeId::Of("k" + std::to_string(trial));
    auto route = kad.RouteKey(from, key);
    ASSERT_TRUE(route.ok());
    hops.Add(route->hops);
  }
  double log2n = std::log2(4096.0);
  EXPECT_GT(hops.mean(), 0.2 * log2n);
  EXPECT_LT(hops.mean(), 1.5 * log2n);
  EXPECT_LE(hops.max(), 2.5 * log2n);
}

TEST(KademliaTest, RoutesAroundDeadNodes) {
  auto dir = test::MakeDirectory(300);
  KademliaOverlay kad(dir.get());
  for (uint32_t i = 0; i < dir->size(); i += 2) dir->SetAlive(i, false);
  util::Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t from;
    do {
      from = rng.NextUint64(dir->size());
    } while (!dir->alive(from));
    NodeId key = NodeId::Of("x" + std::to_string(trial));
    auto route = kad.RouteKey(from, key);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(dir->alive(route->dest_index));
  }
}

TEST(KademliaTest, EmptyNetworkUnavailable) {
  auto dir = test::MakeDirectory(4);
  for (uint32_t i = 0; i < 4; ++i) dir->SetAlive(i, false);
  KademliaOverlay kad(dir.get());
  EXPECT_FALSE(kad.RouteKey(0, NodeId::Of("k")).ok());
}

TEST(KademliaTest, WorksAsSelectionOverlay) {
  // The SEP2P selection must run unchanged over Kademlia routing.
  auto network = test::MakeNetwork(1500, 0.01, /*cache=*/192);
  ASSERT_NE(network, nullptr);
  KademliaOverlay kad(&network->directory());
  core::ProtocolContext ctx = network->context();
  ctx.overlay = &kad;
  core::SelectionProtocol protocol(ctx);
  util::Rng rng(7);
  auto outcome = protocol.Run(5, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->val.actor_count(), ctx.actor_count);
  EXPECT_TRUE(core::VerifyActorList(ctx, outcome->val).ok());
}

}  // namespace
}  // namespace sep2p::dht
