// Scaled-down versions of the paper's experiments: the shapes the figures
// report must already hold at small N.

#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace sep2p::sim {
namespace {

Parameters SmallNet() {
  Parameters p;
  p.n = 4000;
  p.colluding_fraction = 0.01;
  p.actor_count = 8;
  p.cache_size = 128;
  p.seed = 11;
  return p;
}

TEST(ExperimentTest, Figure3ShapeSep2pIdealOthersNot) {
  auto points = RunStrategyComparison(SmallNet(), {0.02},
                                      {"SEP2P", "ES.NAV", "ES.AV", "M.Hash"},
                                      /*trials=*/80);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 4u);

  const StrategyPoint& sep2p = (*points)[0];
  EXPECT_EQ(sep2p.strategy, "SEP2P");
  EXPECT_GT(sep2p.effectiveness, 0.5);

  for (size_t i = 1; i < points->size(); ++i) {
    EXPECT_LT((*points)[i].effectiveness, sep2p.effectiveness)
        << (*points)[i].strategy;
  }
  // Verification costs ordered as in the paper:
  // SEP2P ~= ES.NAV < M.Hash < ES.AV (both pay 2k; k varies slightly
  // with the local region density, so compare averages approximately).
  EXPECT_NEAR(sep2p.verification_cost, (*points)[1].verification_cost, 1.5);
  EXPECT_LT((*points)[1].verification_cost, (*points)[3].verification_cost);
  EXPECT_LT((*points)[3].verification_cost, (*points)[2].verification_cost);
}

TEST(ExperimentTest, Figure45ShapeSep2pPaysSetupMHashPaysMessages) {
  auto points = RunStrategyComparison(SmallNet(), {0.01},
                                      {"SEP2P", "ES.NAV", "M.Hash"},
                                      /*trials=*/60);
  ASSERT_TRUE(points.ok());
  const StrategyPoint& sep2p = (*points)[0];
  const StrategyPoint& nav = (*points)[1];
  const StrategyPoint& mhash = (*points)[2];

  EXPECT_GT(sep2p.setup_crypto_work, nav.setup_crypto_work);
  EXPECT_GT(mhash.setup_msg_work, nav.setup_msg_work);
  // Latency stays modest because work is parallel (paper: ~20 ops).
  EXPECT_LT(sep2p.setup_crypto_latency, sep2p.setup_crypto_work);
}

TEST(ExperimentTest, Figure6KGrowsWithColluderFractionNotN) {
  KCurvePoint small = ComputeAverageK(10000, 0.01, 1e-6, 3000, 1);
  KCurvePoint large = ComputeAverageK(10000000, 0.01, 1e-6, 3000, 1);
  EXPECT_NEAR(small.avg_k, large.avg_k, 0.6);

  KCurvePoint low_c = ComputeAverageK(100000, 0.0001, 1e-6, 2000, 2);
  KCurvePoint high_c = ComputeAverageK(100000, 0.1, 1e-6, 2000, 2);
  EXPECT_LT(low_c.avg_k, high_c.avg_k);

  // Paper headline: k <= 6 for C% <= 1% at alpha = 1e-6.
  KCurvePoint paper = ComputeAverageK(10000000, 0.01, 1e-6, 2000, 3);
  EXPECT_LE(paper.avg_k, 6.0);
}

TEST(ExperimentTest, Figure6KTableBeatsNoKTable) {
  KCurvePoint point = ComputeAverageK(1000000, 0.01, 1e-10, 3000, 4);
  EXPECT_LT(point.avg_k, point.k_max);  // the optimization helps
  EXPECT_LE(point.max_k_seen, point.k_max);
}

TEST(ExperimentTest, Figure6AlphaHasSmallInfluence) {
  KCurvePoint loose = ComputeAverageK(1000000, 0.01, 1e-6, 2000, 5);
  KCurvePoint tight = ComputeAverageK(1000000, 0.01, 1e-10, 2000, 5);
  EXPECT_GE(tight.avg_k, loose.avg_k - 0.01);
  EXPECT_LE(tight.avg_k - loose.avg_k, 3.0);  // a few units at most
}

TEST(ExperimentTest, Figure7SmallCachesRelocateLargeCachesDont) {
  Parameters params = SmallNet();
  auto points = RunCacheSweep(params, {12, 64, 256}, /*trials=*/50);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 3u);
  EXPECT_GT((*points)[0].relocated_fraction, 0.08);
  EXPECT_LT((*points)[2].relocated_fraction, 0.05);
  EXPECT_GT((*points)[0].setup_msg_work, (*points)[2].setup_msg_work * 0.9);
}

TEST(ExperimentTest, ActorSweepGrowsTotalMessageWork) {
  auto points = RunActorSweep(SmallNet(), {4, 16, 64}, /*trials=*/25);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 3u);
  EXPECT_GT((*points)[2].setup_msg_work, (*points)[0].setup_msg_work * 3);
  // 2k is independent of A (k floats with region density only).
  EXPECT_NEAR((*points)[0].verification_cost,
              (*points)[2].verification_cost, 1.5);
}

TEST(ExperimentTest, ExhaustiveSettersProduceConcentratedStats) {
  auto stats = RunExhaustiveSetters(SmallNet(), /*sample=*/300);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->setters, 250);
  // Verification cost is 2k with k in the k-table band.
  EXPECT_GE(stats->verif_avg, 4.0);
  EXPECT_LE(stats->verif_max, 2.0 * 12);
  // Costs concentrate: stddev well below the mean.
  EXPECT_LT(stats->crypto_work_stddev, stats->crypto_work_avg);
  EXPECT_LT(stats->msg_work_stddev, stats->msg_work_avg);
  EXPECT_GE(stats->crypto_work_max, stats->crypto_work_avg);
}

TEST(ExperimentTest, AlphaProbeSeesNoBreaches) {
  Parameters params = SmallNet();
  auto probe = ProbeAlpha(params, 1e-6, /*network_count=*/20);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(probe->breaches, 0);
  EXPECT_LE(probe->max_colluders_seen, probe->k);
}

}  // namespace
}  // namespace sep2p::sim
