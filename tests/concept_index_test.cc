#include "apps/concept_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class ConceptIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(800, 0.01);
    ASSERT_NE(network_, nullptr);
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(800));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
  }

  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  util::Rng rng_{13};
};

TEST_F(ConceptIndexTest, PublishThenLookupReturnsPoster) {
  ConceptIndex index(network_.get(), runtime_.get());
  ASSERT_TRUE(index.Publish(42, {"pilot", "paris"}, rng_).ok());
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<uint32_t>{42}));
}

TEST_F(ConceptIndexTest, MultiplePostersAccumulate) {
  ConceptIndex index(network_.get(), runtime_.get());
  for (uint32_t node : {5u, 9u, 200u}) {
    ASSERT_TRUE(index.Publish(node, {"pilot"}, rng_).ok());
  }
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> nodes = result->nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<uint32_t>{5, 9, 200}));
}

TEST_F(ConceptIndexTest, UnknownConceptIsEmpty) {
  ConceptIndex index(network_.get(), runtime_.get());
  auto result = index.Lookup(7, "nothing");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nodes.empty());
}

TEST_F(ConceptIndexTest, ConceptsScatterAcrossIndexers) {
  ConceptIndex index(network_.get(), runtime_.get());
  std::set<uint32_t> indexers;
  for (int i = 0; i < 40; ++i) {
    auto owner = index.IndexerFor("concept-" + std::to_string(i), 0);
    ASSERT_TRUE(owner.ok());
    indexers.insert(*owner);
  }
  // Randomized concept-to-MI association (imposed node ids): 40 concepts
  // land on many distinct indexers.
  EXPECT_GT(indexers.size(), 25u);
}

TEST_F(ConceptIndexTest, LookupCostCountsDhtRouting) {
  ConceptIndex index(network_.get(), runtime_.get());
  ASSERT_TRUE(index.Publish(3, {"x"}, rng_).ok());
  auto result = index.Lookup(600, "x");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->cost.msg_work, 1.0);  // at least the store contact
}

TEST_F(ConceptIndexTest, PlaintextIndexLeaksToSingleIndexer) {
  ConceptIndex index(network_.get(), runtime_.get());  // p = s = 1
  ASSERT_TRUE(index.Publish(42, {"secret-club"}, rng_).ok());
  auto owner = index.IndexerFor("secret-club", 0);
  ASSERT_TRUE(owner.ok());
  std::vector<uint32_t> leak =
      index.SingleIndexerDisclosure(*owner, "secret-club");
  EXPECT_EQ(leak, (std::vector<uint32_t>{42}));  // full disclosure
}

TEST_F(ConceptIndexTest, ShamirShardedIndexStillAnswersLookups) {
  ConceptIndex::Options options;
  options.shamir_threshold = 3;
  options.shamir_shares = 5;
  ConceptIndex index(network_.get(), runtime_.get(), options);
  for (uint32_t node : {10u, 20u, 30u}) {
    ASSERT_TRUE(index.Publish(node, {"pilot"}, rng_).ok());
  }
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> nodes = result->nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<uint32_t>{10, 20, 30}));
  EXPECT_EQ(result->indexers.size(), 3u);  // p indexers contacted
}

TEST_F(ConceptIndexTest, ShamirShardedIndexHidesPostingsFromOneIndexer) {
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  ConceptIndex index(network_.get(), runtime_.get(), options);
  ASSERT_TRUE(index.Publish(42, {"secret-club"}, rng_).ok());

  // No single MI can reconstruct the posting: its naive decode must not
  // equal the real posting (probability 2^-32 of collision per share).
  for (int share = 0; share < 3; ++share) {
    auto owner = index.IndexerFor("secret-club", share);
    ASSERT_TRUE(owner.ok());
    std::vector<uint32_t> leak =
        index.SingleIndexerDisclosure(*owner, "secret-club");
    for (uint32_t decoded : leak) {
      EXPECT_NE(decoded, 42u) << "share " << share;
    }
  }
}

TEST_F(ConceptIndexTest, SharesLiveOnDistinctIndexersUsually) {
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  ConceptIndex index(network_.get(), runtime_.get(), options);
  int distinct_total = 0;
  for (int i = 0; i < 20; ++i) {
    std::set<uint32_t> owners;
    for (int s = 0; s < 3; ++s) {
      auto owner = index.IndexerFor("c" + std::to_string(i), s);
      ASSERT_TRUE(owner.ok());
      owners.insert(*owner);
    }
    distinct_total += owners.size();
  }
  // Hash-scattered share keys: nearly always 3 distinct MIs.
  EXPECT_GT(distinct_total, 20 * 2);
}

TEST_F(ConceptIndexTest, PublishCostGrowsWithShares) {
  // Separate runtimes: each index owns its handler registrations.
  net::SimNetwork plain_net = test::MakeZeroFaultSimNet(800);
  node::AppRuntime plain_runtime(&plain_net);
  ConceptIndex plain(network_.get(), &plain_runtime);
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 5;
  ConceptIndex sharded(network_.get(), runtime_.get(), options);
  auto c1 = plain.Publish(1, {"a"}, rng_);
  auto c5 = sharded.Publish(1, {"a"}, rng_);
  ASSERT_TRUE(c1.ok() && c5.ok());
  EXPECT_GT(c5->msg_work, c1->msg_work * 2);
}

TEST_F(ConceptIndexTest, UnreachableIndexerDegradesLookup) {
  // A lossy network that eats every transmission: the first MI contact
  // exhausts its retries and the lookup reports the degradation instead
  // of failing.
  net::SimNetwork dead_net = test::MakeSimNet(800, /*drop=*/1.0);
  node::AppRuntime dead_runtime(&dead_net);
  ConceptIndex index(network_.get(), &dead_runtime);
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->indexer_unreachable);
  EXPECT_TRUE(result->nodes.empty());
  EXPECT_GT(dead_net.stats().rpc_failures, 0u);
}

TEST_F(ConceptIndexTest, StoreRetransmissionIsDeduplicated) {
  // Force retries on every RPC by dropping ~half the transmissions: the
  // MI-side dedup on (posting id, share x) must keep each posting single
  // even when the store handler runs more than once.
  net::SimNetwork lossy_net = test::MakeSimNet(800, /*drop=*/0.3,
                                               /*jitter_mean_us=*/0,
                                               /*seed=*/11);
  node::AppRuntime lossy_runtime(&lossy_net);
  ConceptIndex index(network_.get(), &lossy_runtime);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Publish(100 + i, {"pilot"}, rng_).ok());
  }
  ASSERT_GT(lossy_net.stats().retries, 0u);  // dedup actually exercised
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  if (result->indexer_unreachable) return;  // nothing to assert
  std::set<uint32_t> unique(result->nodes.begin(), result->nodes.end());
  // No duplicates: every returned posting appears exactly once.
  EXPECT_EQ(unique.size(), result->nodes.size());
}

}  // namespace
}  // namespace sep2p::apps
