#include "apps/concept_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class ConceptIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(800, 0.01);
    ASSERT_NE(network_, nullptr);
  }

  std::unique_ptr<sim::Network> network_;
  util::Rng rng_{13};
};

TEST_F(ConceptIndexTest, PublishThenLookupReturnsPoster) {
  ConceptIndex index(network_.get());
  ASSERT_TRUE(index.Publish(42, {"pilot", "paris"}, rng_).ok());
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->nodes, (std::vector<uint32_t>{42}));
}

TEST_F(ConceptIndexTest, MultiplePostersAccumulate) {
  ConceptIndex index(network_.get());
  for (uint32_t node : {5u, 9u, 200u}) {
    ASSERT_TRUE(index.Publish(node, {"pilot"}, rng_).ok());
  }
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> nodes = result->nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<uint32_t>{5, 9, 200}));
}

TEST_F(ConceptIndexTest, UnknownConceptIsEmpty) {
  ConceptIndex index(network_.get());
  auto result = index.Lookup(7, "nothing");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->nodes.empty());
}

TEST_F(ConceptIndexTest, ConceptsScatterAcrossIndexers) {
  ConceptIndex index(network_.get());
  std::set<uint32_t> indexers;
  for (int i = 0; i < 40; ++i) {
    auto owner = index.IndexerFor("concept-" + std::to_string(i), 0);
    ASSERT_TRUE(owner.ok());
    indexers.insert(*owner);
  }
  // Randomized concept-to-MI association (imposed node ids): 40 concepts
  // land on many distinct indexers.
  EXPECT_GT(indexers.size(), 25u);
}

TEST_F(ConceptIndexTest, LookupCostCountsDhtRouting) {
  ConceptIndex index(network_.get());
  ASSERT_TRUE(index.Publish(3, {"x"}, rng_).ok());
  auto result = index.Lookup(600, "x");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->cost.msg_work, 1.0);  // at least the store contact
}

TEST_F(ConceptIndexTest, PlaintextIndexLeaksToSingleIndexer) {
  ConceptIndex index(network_.get());  // p = s = 1
  ASSERT_TRUE(index.Publish(42, {"secret-club"}, rng_).ok());
  auto owner = index.IndexerFor("secret-club", 0);
  ASSERT_TRUE(owner.ok());
  std::vector<uint32_t> leak =
      index.SingleIndexerDisclosure(*owner, "secret-club");
  EXPECT_EQ(leak, (std::vector<uint32_t>{42}));  // full disclosure
}

TEST_F(ConceptIndexTest, ShamirShardedIndexStillAnswersLookups) {
  ConceptIndex::Options options;
  options.shamir_threshold = 3;
  options.shamir_shares = 5;
  ConceptIndex index(network_.get(), options);
  for (uint32_t node : {10u, 20u, 30u}) {
    ASSERT_TRUE(index.Publish(node, {"pilot"}, rng_).ok());
  }
  auto result = index.Lookup(7, "pilot");
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> nodes = result->nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<uint32_t>{10, 20, 30}));
  EXPECT_EQ(result->indexers.size(), 3u);  // p indexers contacted
}

TEST_F(ConceptIndexTest, ShamirShardedIndexHidesPostingsFromOneIndexer) {
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  ConceptIndex index(network_.get(), options);
  ASSERT_TRUE(index.Publish(42, {"secret-club"}, rng_).ok());

  // No single MI can reconstruct the posting: its naive decode must not
  // equal the real posting (probability 2^-32 of collision per share).
  for (int share = 0; share < 3; ++share) {
    auto owner = index.IndexerFor("secret-club", share);
    ASSERT_TRUE(owner.ok());
    std::vector<uint32_t> leak =
        index.SingleIndexerDisclosure(*owner, "secret-club");
    for (uint32_t decoded : leak) {
      EXPECT_NE(decoded, 42u) << "share " << share;
    }
  }
}

TEST_F(ConceptIndexTest, SharesLiveOnDistinctIndexersUsually) {
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  ConceptIndex index(network_.get(), options);
  int distinct_total = 0;
  for (int i = 0; i < 20; ++i) {
    std::set<uint32_t> owners;
    for (int s = 0; s < 3; ++s) {
      auto owner = index.IndexerFor("c" + std::to_string(i), s);
      ASSERT_TRUE(owner.ok());
      owners.insert(*owner);
    }
    distinct_total += owners.size();
  }
  // Hash-scattered share keys: nearly always 3 distinct MIs.
  EXPECT_GT(distinct_total, 20 * 2);
}

TEST_F(ConceptIndexTest, PublishCostGrowsWithShares) {
  ConceptIndex plain(network_.get());
  ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 5;
  ConceptIndex sharded(network_.get(), options);
  auto c1 = plain.Publish(1, {"a"}, rng_);
  auto c5 = sharded.Publish(1, {"a"}, rng_);
  ASSERT_TRUE(c1.ok() && c5.ok());
  EXPECT_GT(c5->msg_work, c1->msg_work * 2);
}

}  // namespace
}  // namespace sep2p::apps
