#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "util/rng.h"

namespace sep2p::crypto {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(gf256::Add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf256::Add(7, 7), 0);
}

TEST(Gf256Test, MultiplicationKnownValues) {
  // Classic AES example: 0x53 * 0xca = 0x01.
  EXPECT_EQ(gf256::Mul(0x53, 0xca), 0x01);
  EXPECT_EQ(gf256::Mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(gf256::Mul(0, 0x37), 0);
  EXPECT_EQ(gf256::Mul(1, 0x37), 0x37);
}

TEST(Gf256Test, MultiplicationCommutativeAndDistributive) {
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    uint8_t a = rng.NextUint64(256), b = rng.NextUint64(256),
            c = rng.NextUint64(256);
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
    EXPECT_EQ(gf256::Mul(a, gf256::Add(b, c)),
              gf256::Add(gf256::Mul(a, b), gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf256::Mul(static_cast<uint8_t>(a), inv), 1) << "a=" << a;
  }
}

using SplitParam = std::tuple<int, int>;  // threshold, shares

class ShamirRoundTripTest : public ::testing::TestWithParam<SplitParam> {};

TEST_P(ShamirRoundTripTest, ExactThresholdReconstructs) {
  auto [threshold, share_count] = GetParam();
  util::Rng rng(99);
  std::vector<uint8_t> secret{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  auto shares = ShamirSplit(secret, threshold, share_count, rng);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), static_cast<size_t>(share_count));

  std::vector<SecretShare> subset(shares->begin(),
                                  shares->begin() + threshold);
  auto recovered = ShamirCombine(subset);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

TEST_P(ShamirRoundTripTest, AnySubsetOfThresholdSizeReconstructs) {
  auto [threshold, share_count] = GetParam();
  util::Rng rng(7);
  std::vector<uint8_t> secret{1, 2, 3};
  auto shares = ShamirSplit(secret, threshold, share_count, rng);
  ASSERT_TRUE(shares.ok());
  // Take the *last* threshold shares (different subset than the first).
  std::vector<SecretShare> subset(shares->end() - threshold, shares->end());
  auto recovered = ShamirCombine(subset);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirRoundTripTest,
    ::testing::Values(SplitParam{1, 1}, SplitParam{1, 3}, SplitParam{2, 2},
                      SplitParam{2, 3}, SplitParam{3, 5}, SplitParam{5, 8},
                      SplitParam{10, 10}, SplitParam{3, 255}));

TEST(ShamirTest, FewerThanThresholdYieldsGarbage) {
  util::Rng rng(3);
  std::vector<uint8_t> secret{0xaa, 0xbb, 0xcc};
  auto shares = ShamirSplit(secret, 3, 5, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<SecretShare> two(shares->begin(), shares->begin() + 2);
  auto recovered = ShamirCombine(two);
  // Combining too few shares "succeeds" mathematically but must not
  // reveal the secret.
  ASSERT_TRUE(recovered.ok());
  EXPECT_NE(*recovered, secret);
}

TEST(ShamirTest, SingleShareIsStatisticallyIndependentOfSecret) {
  // For p >= 2, one share byte should be uniform regardless of the
  // secret byte: check that share values for a fixed secret hit many
  // distinct values across random polynomials.
  util::Rng rng(17);
  std::map<uint8_t, int> histogram;
  for (int i = 0; i < 2000; ++i) {
    auto shares = ShamirSplit({0x42}, 2, 2, rng);
    ASSERT_TRUE(shares.ok());
    ++histogram[(*shares)[0].data[0]];
  }
  EXPECT_GT(histogram.size(), 200u);  // far from constant
}

TEST(ShamirTest, EmptySecretSupported) {
  util::Rng rng(5);
  auto shares = ShamirSplit({}, 2, 3, rng);
  ASSERT_TRUE(shares.ok());
  std::vector<SecretShare> subset(shares->begin(), shares->begin() + 2);
  auto recovered = ShamirCombine(subset);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->empty());
}

TEST(ShamirTest, InvalidParametersRejected) {
  util::Rng rng(6);
  EXPECT_FALSE(ShamirSplit({1}, 0, 3, rng).ok());   // threshold < 1
  EXPECT_FALSE(ShamirSplit({1}, 4, 3, rng).ok());   // threshold > shares
  EXPECT_FALSE(ShamirSplit({1}, 2, 256, rng).ok()); // too many shares
}

TEST(ShamirTest, CombineRejectsBadShareSets) {
  util::Rng rng(8);
  auto shares = ShamirSplit({1, 2}, 2, 3, rng);
  ASSERT_TRUE(shares.ok());

  EXPECT_FALSE(ShamirCombine({}).ok());  // empty

  std::vector<SecretShare> dup{(*shares)[0], (*shares)[0]};
  EXPECT_FALSE(ShamirCombine(dup).ok());  // duplicate x

  std::vector<SecretShare> mismatched{(*shares)[0], (*shares)[1]};
  mismatched[1].data.pop_back();
  EXPECT_FALSE(ShamirCombine(mismatched).ok());  // inconsistent lengths

  SecretShare zero = (*shares)[0];
  zero.x = 0;
  EXPECT_FALSE(ShamirCombine({zero}).ok());  // x = 0 would BE the secret
}

TEST(ShamirTest, MoreThanThresholdSharesStillReconstruct) {
  util::Rng rng(9);
  std::vector<uint8_t> secret{9, 9, 9, 9};
  auto shares = ShamirSplit(secret, 2, 5, rng);
  ASSERT_TRUE(shares.ok());
  auto recovered = ShamirCombine(*shares);  // all 5 shares
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

}  // namespace
}  // namespace sep2p::crypto
