// ThroughputEngine: concurrent-task execution with the mempool,
// admission backpressure and batched deferred verification
// (engine/throughput.h). The determinism tests build a FRESH world per
// run (engine runs mutate caches, rate limiters and the virtual clock)
// and compare the bit-identity probes across worker counts.

#include "engine/throughput.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "apps/query.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace sep2p::engine {
namespace {

// One self-contained world: network, PDMS fleet, message runtime, apps.
// Identical seeds => bit-identical worlds.
struct World {
  std::unique_ptr<sim::Network> network;
  std::vector<node::PdmsNode> pdms;
  std::unique_ptr<net::SimNetwork> simnet;
  std::unique_ptr<node::AppRuntime> runtime;
  std::unique_ptr<apps::ConceptIndex> index;
  std::unique_ptr<apps::DiffusionApp> diffusion;
  std::unique_ptr<apps::QueryApp> query;
};

World MakeWorld() {
  World w;
  w.network = test::MakeNetwork(600, 0.01, /*cache=*/128);
  EXPECT_NE(w.network, nullptr);
  for (uint32_t i = 0; i < w.network->directory().size(); ++i) {
    w.pdms.emplace_back(i);
    if (i % 4 == 0) w.pdms.back().AddConcept("pilot");
    w.pdms.back().SetAttribute("hours", i % 50);
  }
  w.simnet = std::make_unique<net::SimNetwork>(
      test::MakeZeroFaultSimNet(600));
  w.runtime = std::make_unique<node::AppRuntime>(w.simnet.get());
  w.index = std::make_unique<apps::ConceptIndex>(w.network.get(),
                                                 w.runtime.get());
  w.diffusion = std::make_unique<apps::DiffusionApp>(
      w.network.get(), &w.pdms, w.index.get(), w.runtime.get());
  util::Rng rng(5);
  EXPECT_TRUE(w.diffusion->PublishAllProfiles(rng).ok());
  w.query = std::make_unique<apps::QueryApp>(w.network.get(), &w.pdms,
                                             w.index.get(), w.runtime.get());
  return w;
}

apps::QuerySpec Spec() {
  apps::QuerySpec spec;
  spec.profile_expression = "pilot";
  spec.attribute = "hours";
  spec.aggregate = apps::Aggregate::kAvg;
  return spec;
}

ThroughputEngine::Report RunEngine(const ThroughputEngine::Options& options,
                                   int tasks,
                                   obs::MetricsRegistry* metrics = nullptr) {
  World w = MakeWorld();
  ThroughputEngine engine(w.network.get(), w.simnet.get(), w.runtime.get(),
                          options);
  engine.set_diffusion(w.diffusion.get(), "pilot", "notice");
  engine.set_query(w.query.get(), Spec());
  if (metrics != nullptr) engine.set_metrics(metrics);
  engine.SubmitWorkload(tasks, {TaskKind::kSelection, TaskKind::kQuery,
                                TaskKind::kSelection, TaskKind::kDiffusion});
  auto report = engine.Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.value();
}

TEST(ThroughputEngineTest, ResultsAreBitIdenticalAcrossWorkerCounts) {
  ThroughputEngine::Options options;
  options.verify_mode = ThroughputEngine::VerifyMode::kBatched;
  options.window = 8;
  options.arrival_gap_us = 5'000;
  options.resolve_every = 8;

  options.workers = 1;
  const ThroughputEngine::Report ref = RunEngine(options, 24);
  EXPECT_GT(ref.completed, 0u);
  for (int workers : {4, 8}) {
    options.workers = workers;
    const ThroughputEngine::Report r = RunEngine(options, 24);
    EXPECT_EQ(r.results_digest, ref.results_digest) << "workers=" << workers;
    EXPECT_EQ(r.completed, ref.completed) << "workers=" << workers;
    EXPECT_EQ(r.failed, ref.failed) << "workers=" << workers;
    EXPECT_EQ(r.virtual_makespan_us, ref.virtual_makespan_us)
        << "workers=" << workers;
    EXPECT_EQ(r.p50_task_latency_us, ref.p50_task_latency_us)
        << "workers=" << workers;
    EXPECT_EQ(r.p99_task_latency_us, ref.p99_task_latency_us)
        << "workers=" << workers;
    EXPECT_EQ(r.p50_queue_delay_us, ref.p50_queue_delay_us)
        << "workers=" << workers;
    EXPECT_EQ(r.crypto_verifies, ref.crypto_verifies)
        << "workers=" << workers;
    EXPECT_EQ(r.verify_stats.items, ref.verify_stats.items)
        << "workers=" << workers;
    EXPECT_EQ(r.verify_stats.batches, ref.verify_stats.batches)
        << "workers=" << workers;
  }
}

TEST(ThroughputEngineTest, MetricsAreBitIdenticalAcrossWorkerCounts) {
  ThroughputEngine::Options options;
  options.window = 4;
  options.arrival_gap_us = 2'000;

  options.workers = 1;
  obs::MetricsRegistry ref;
  RunEngine(options, 12, &ref);
  for (int workers : {4, 8}) {
    options.workers = workers;
    obs::MetricsRegistry m;
    RunEngine(options, 12, &m);
    EXPECT_EQ(m.ToJson(), ref.ToJson()) << "workers=" << workers;
  }
}

TEST(ThroughputEngineTest, NaiveAndBatchedAgreeOnVirtualTimeResults) {
  // Verification never advances the virtual clock in either mode, so
  // everything except wall-clock and verifier stats must agree — the
  // anchor that makes the saturation bench's naive/batched comparison
  // apples-to-apples.
  ThroughputEngine::Options options;
  options.window = 8;
  options.arrival_gap_us = 5'000;

  options.verify_mode = ThroughputEngine::VerifyMode::kNaive;
  const ThroughputEngine::Report naive = RunEngine(options, 16);
  options.verify_mode = ThroughputEngine::VerifyMode::kBatched;
  options.workers = 4;
  const ThroughputEngine::Report batched = RunEngine(options, 16);

  EXPECT_EQ(batched.results_digest, naive.results_digest);
  EXPECT_EQ(batched.completed, naive.completed);
  EXPECT_EQ(batched.failed, naive.failed);
  EXPECT_EQ(batched.virtual_makespan_us, naive.virtual_makespan_us);
  EXPECT_EQ(batched.p99_task_latency_us, naive.p99_task_latency_us);
  // Batched mode coalesces duplicate triples (many parties verifying
  // the same actor list), so its metered asymmetric-operation count is
  // at most the naive path's — never more.
  EXPECT_LE(batched.crypto_verifies, naive.crypto_verifies);
  EXPECT_GT(batched.crypto_verifies, 0u);
  EXPECT_GT(batched.verify_stats.items, 0u);
  EXPECT_GT(batched.verify_stats.coalesced, 0u);
  EXPECT_EQ(naive.verify_stats.items, 0u);
}

TEST(ThroughputEngineTest, BackpressureNeverDropsAnAdmittedTask) {
  // A window far smaller than the workload forces heavy queuing; the
  // conservation invariant must hold: every submitted task is admitted,
  // every admitted task resolves to completed or failed.
  ThroughputEngine::Options options;
  options.window = 2;
  options.arrival_gap_us = 100;  // offered load far beyond capacity
  options.resolve_every = 4;
  options.workers = 2;
  const ThroughputEngine::Report r = RunEngine(options, 30);
  EXPECT_EQ(r.submitted, 30u);
  EXPECT_EQ(r.admitted, 30u);
  EXPECT_EQ(r.completed + r.failed, r.admitted);
  // Saturation shows up as queue delay, not as loss.
  EXPECT_GT(r.p99_queue_delay_us, 0u);
}

TEST(ThroughputEngineTest, QueueDelayGrowsWithOfferedLoad) {
  ThroughputEngine::Options options;
  options.window = 2;
  options.workers = 1;

  options.arrival_gap_us = 100'000'000;  // trickle: window never fills
  const ThroughputEngine::Report idle = RunEngine(options, 10);
  options.arrival_gap_us = 100;  // flood
  const ThroughputEngine::Report flooded = RunEngine(options, 10);

  EXPECT_EQ(idle.p99_queue_delay_us, 0u);
  EXPECT_GT(flooded.p99_queue_delay_us, idle.p99_queue_delay_us);
  // Offered rate beyond capacity cannot raise the completion rate.
  EXPECT_GT(flooded.offered_per_virtual_sec,
            flooded.completed_per_virtual_sec);
}

TEST(ThroughputEngineTest, RunIsOneShot) {
  World w = MakeWorld();
  ThroughputEngine::Options options;
  ThroughputEngine engine(w.network.get(), w.simnet.get(), w.runtime.get(),
                          options);
  engine.Submit(TaskKind::kSelection, 3, 0);
  EXPECT_TRUE(engine.Run().ok());
  EXPECT_FALSE(engine.Run().ok());
}

}  // namespace
}  // namespace sep2p::engine
