#include "dht/directory.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "tests/test_util.h"

namespace sep2p::dht {
namespace {

TEST(DirectoryTest, SortedByRingPosition) {
  auto dir = test::MakeDirectory(500);
  for (uint32_t i = 1; i < dir->size(); ++i) {
    EXPECT_LE(dir->pos(i - 1), dir->pos(i));
  }
}

TEST(DirectoryTest, SuccessorOfOwnPositionIsSelf) {
  auto dir = test::MakeDirectory(200);
  for (uint32_t i = 0; i < dir->size(); i += 17) {
    auto succ = dir->SuccessorIndex(dir->pos(i));
    ASSERT_TRUE(succ.has_value());
    EXPECT_EQ(*succ, i);
  }
}

TEST(DirectoryTest, SuccessorWrapsPastLastNode) {
  auto dir = test::MakeDirectory(100);
  RingPos beyond_last = dir->pos(dir->size() - 1) + 1;
  auto succ = dir->SuccessorIndex(beyond_last);
  ASSERT_TRUE(succ.has_value());
  EXPECT_EQ(*succ, 0u);  // wraps to the first node
}

TEST(DirectoryTest, SuccessorSkipsDeadNodes) {
  auto dir = test::MakeDirectory(50);
  dir->SetAlive(3, false);
  RingPos pos = dir->pos(3);
  auto succ = dir->SuccessorIndex(pos);
  ASSERT_TRUE(succ.has_value());
  EXPECT_EQ(*succ, 4u);
  dir->SetAlive(3, true);
}

TEST(DirectoryTest, AliveCountTracksToggles) {
  auto dir = test::MakeDirectory(20);
  EXPECT_EQ(dir->alive_count(), 20u);
  dir->SetAlive(5, false);
  dir->SetAlive(5, false);  // idempotent
  EXPECT_EQ(dir->alive_count(), 19u);
  dir->SetAlive(5, true);
  EXPECT_EQ(dir->alive_count(), 20u);
}

TEST(DirectoryTest, PredecessorIsStrictlyBefore) {
  auto dir = test::MakeDirectory(200);
  for (uint32_t i = 0; i < dir->size(); i += 11) {
    auto pred = dir->PredecessorIndex(dir->pos(i));
    ASSERT_TRUE(pred.has_value());
    // Strictly before on the ring: the predecessor of node i's position
    // is node i-1 (wrapping).
    EXPECT_EQ(*pred, (i + dir->size() - 1) % dir->size());
  }
}

TEST(DirectoryTest, PredecessorSkipsDeadNodes) {
  auto dir = test::MakeDirectory(50);
  auto pred = dir->PredecessorIndex(dir->pos(10));
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, 9u);
  dir->SetAlive(9, false);
  pred = dir->PredecessorIndex(dir->pos(10));
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, 8u);
  dir->SetAlive(9, true);
}

TEST(DirectoryTest, SuccessorAndPredecessorAreInverse) {
  auto dir = test::MakeDirectory(300);
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    RingPos probe = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                    rng.NextUint64();
    auto succ = dir->SuccessorIndex(probe);
    auto pred = dir->PredecessorIndex(probe);
    ASSERT_TRUE(succ.has_value() && pred.has_value());
    // No alive node lies strictly between pred and probe or between
    // probe and succ (succ may equal probe's exact holder).
    EXPECT_EQ(*dir->SuccessorIndex(dir->pos(*pred) + 1), *succ);
  }
}

TEST(DirectoryTest, NearestPicksCloserOfNeighbors) {
  auto dir = test::MakeDirectory(300);
  // Probe points between consecutive nodes.
  for (uint32_t i = 0; i + 1 < dir->size(); i += 23) {
    RingPos a = dir->pos(i), b = dir->pos(i + 1);
    if (b - a < 4) continue;
    RingPos near_a = a + 1;
    auto nearest = dir->NearestIndex(near_a);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_EQ(*nearest, i);
    RingPos near_b = b - 1;
    nearest = dir->NearestIndex(near_b);
    ASSERT_TRUE(nearest.has_value());
    EXPECT_EQ(*nearest, i + 1);
  }
}

TEST(DirectoryTest, RegionQueryMatchesBruteForce) {
  auto dir = test::MakeDirectory(400);
  util::Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    RingPos center = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                     rng.NextUint64();
    double rs = std::pow(10.0, -3.0 * rng.NextDouble());
    Region region = Region::Centered(center, rs);

    std::vector<uint32_t> brute;
    for (uint32_t i = 0; i < dir->size(); ++i) {
      if (region.Contains(dir->pos(i))) brute.push_back(i);
    }
    std::vector<uint32_t> fast = dir->NodesInRegion(region);
    std::sort(fast.begin(), fast.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(fast, brute) << "trial " << trial << " rs " << rs;
    EXPECT_EQ(dir->CountInRegion(region), brute.size());
  }
}

TEST(DirectoryTest, RegionQueryFullRingReturnsAllAlive) {
  auto dir = test::MakeDirectory(64);
  dir->SetAlive(10, false);
  Region full = Region::Centered(12345, 1.0);
  EXPECT_EQ(dir->NodesInRegion(full).size(), 63u);
  dir->SetAlive(10, true);
}

TEST(DirectoryTest, RegionQueryRespectsLimit) {
  auto dir = test::MakeDirectory(64);
  Region full = Region::Centered(0, 1.0);
  EXPECT_EQ(dir->NodesInRegion(full, 5).size(), 5u);
}

TEST(DirectoryTest, RegionQueryExcludesDeadNodes) {
  auto dir = test::MakeDirectory(64);
  Region full = Region::Centered(0, 1.0);
  std::vector<uint32_t> all = dir->NodesInRegion(full);
  dir->SetAlive(all[7], false);
  std::vector<uint32_t> after = dir->NodesInRegion(full);
  EXPECT_EQ(after.size(), all.size() - 1);
  EXPECT_EQ(std::count(after.begin(), after.end(), all[7]), 0);
  dir->SetAlive(all[7], true);
}

TEST(DirectoryTest, IndexOfFindsEveryNode) {
  auto dir = test::MakeDirectory(128);
  for (uint32_t i = 0; i < dir->size(); ++i) {
    auto found = dir->IndexOf(dir->id(i));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, i);
  }
}

TEST(DirectoryTest, IndexOfUnknownIdReturnsNullopt) {
  auto dir = test::MakeDirectory(16);
  EXPECT_FALSE(dir->IndexOf(NodeId::Of("not a node")).has_value());
}

TEST(DirectoryTest, EmptyWhenAllDead) {
  auto dir = test::MakeDirectory(8);
  for (uint32_t i = 0; i < 8; ++i) dir->SetAlive(i, false);
  EXPECT_FALSE(dir->SuccessorIndex(0).has_value());
  EXPECT_FALSE(dir->NearestIndex(0).has_value());
  EXPECT_TRUE(dir->NodesInRegion(Region::Centered(0, 1.0)).empty());
}

TEST(DirectoryTest, ImposedIdsAreUniformAcrossRing) {
  // Chi-square-ish check: bucket 4000 node positions into 16 arcs.
  auto dir = test::MakeDirectory(4000);
  int buckets[16] = {};
  for (uint32_t i = 0; i < dir->size(); ++i) {
    int b = static_cast<int>(dir->pos(i) >> 124);
    ++buckets[b];
  }
  for (int b : buckets) EXPECT_NEAR(b, 250, 80);
}

}  // namespace
}  // namespace sep2p::dht
