// Scale + churn regression suite (ROADMAP item 1).
//
// Covers the bugs that only bite at large N or under concurrency:
//  - ChordOverlay's hop bound is per-overlay state (it was a mutable
//    process-global static shared across concurrent trials) — the
//    ChordOverlayRace suite runs under TSan in CI.
//  - Incremental directory maintenance (SetAlive / MarkCrashed /
//    AddNode) must answer every query exactly like a from-scratch
//    rebuild of the surviving population.
//  - CAN incremental join/leave keeps a valid partition equal (as an
//    owner set) to a from-scratch rebuild.
//  - O(C) ReassignColluders is bit-identical to the historical
//    clear-all-then-sample path.
//  - The ChurnDriver is deterministic for any build thread count, and
//    churn-pool nodes get genuine CA certificates at join time.

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "crypto/batch_verifier.h"
#include "crypto/sim_provider.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/directory.h"
#include "dht/node_id.h"
#include "gtest/gtest.h"
#include "sim/churn_driver.h"
#include "sim/network.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace sep2p {
namespace {

std::vector<dht::NodeRecord> MakeRecords(size_t n, uint64_t seed) {
  crypto::SimProvider provider;
  util::Rng rng(seed);
  std::vector<dht::NodeRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto pair = provider.GenerateKeyPair(rng);
    dht::NodeRecord record;
    record.pub = pair->pub;
    record.priv = std::move(pair->priv);
    record.id = dht::NodeIdForKey(record.pub);
    record.pos = record.id.ring_pos();
    records.push_back(std::move(record));
  }
  return records;
}

// ---------------------------------------------------------------------
// Satellite (a): per-overlay hop bound, raced from two threads.

TEST(ChordOverlayRaceTest, HopBoundIsPerOverlayNotProcessGlobal) {
  auto dir_a = test::MakeDirectory(300, 1);
  auto dir_b = test::MakeDirectory(300, 2);
  dht::ChordOverlay tight(dir_a.get(), /*max_hops=*/7);
  dht::ChordOverlay roomy(dir_b.get(), /*max_hops=*/500);
  EXPECT_EQ(tight.max_hops(), 7);
  EXPECT_EQ(roomy.max_hops(), 500);

  // With the old `static int kMaxHops`, either thread's configuration
  // clobbered the other's (and TSan flagged the write race). Each
  // overlay must keep its own bound while both route concurrently.
  std::atomic<bool> failed{false};
  auto worker = [&failed](const dht::Directory& dir,
                          const dht::ChordOverlay& overlay,
                          int expected_bound, uint64_t seed) {
    util::Rng rng(seed);
    for (int i = 0; i < 400; ++i) {
      if (overlay.max_hops() != expected_bound) {
        failed = true;
        return;
      }
      uint32_t from = static_cast<uint32_t>(rng.NextUint64(dir.size()));
      auto route = overlay.Route(from, dir.pos(static_cast<uint32_t>(
                                           rng.NextUint64(dir.size()))));
      if (route.ok() && route->hops > expected_bound) {
        failed = true;
        return;
      }
    }
  };
  std::thread a(worker, std::cref(*dir_a), std::cref(tight), 7, 11);
  std::thread b(worker, std::cref(*dir_b), std::cref(roomy), 500, 12);
  a.join();
  b.join();
  EXPECT_FALSE(failed.load());
}

TEST(ChordOverlayRaceTest, TightBoundStillRoutesSmallRings) {
  // log2(300) ~ 8.2; a 7-hop bound can fail, a 50-hop bound cannot.
  auto dir = test::MakeDirectory(300, 3);
  dht::ChordOverlay overlay(dir.get(), /*max_hops=*/50);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    uint32_t from = static_cast<uint32_t>(rng.NextUint64(dir->size()));
    auto route = overlay.Route(
        from, dir->pos(static_cast<uint32_t>(rng.NextUint64(dir->size()))));
    ASSERT_TRUE(route.ok());
    EXPECT_LE(route->hops, 50);
  }
}

// ---------------------------------------------------------------------
// Incremental maintenance == from-scratch rebuild.

TEST(DirectoryChurnEquivalenceTest, RandomChurnMatchesRebuild) {
  const size_t kInitial = 400;
  std::vector<dht::NodeRecord> records = MakeRecords(kInitial + 100, 21);

  // Incremental directory starts with the initial population; the last
  // 100 records are fed through AddNode mid-sequence.
  std::vector<dht::NodeRecord> initial(records.begin(),
                                       records.begin() + kInitial);
  dht::Directory incremental(initial);

  std::vector<dht::NodeRecord> mirror = initial;  // rebuild input
  auto mirror_of = [&mirror](const dht::NodeId& id) -> dht::NodeRecord& {
    for (auto& r : mirror) {
      if (r.id == id) return r;
    }
    ADD_FAILURE() << "mirror lookup failed";
    return mirror.front();
  };

  util::Rng rng(31);
  size_t next_new = kInitial;
  for (int step = 0; step < 600; ++step) {
    const double p = rng.NextDouble();
    if (p < 0.25 && next_new < records.size()) {
      // Genuine insertion.
      incremental.AddNode(records[next_new]);
      mirror.push_back(records[next_new]);
      ++next_new;
    } else if (p < 0.50) {
      // Revive (no-op when already alive).
      uint32_t idx = static_cast<uint32_t>(
          rng.NextUint64(incremental.size()));
      incremental.SetAlive(idx, true);
      mirror_of(incremental.id(idx)).alive = true;
    } else if (p < 0.75) {
      uint32_t idx = static_cast<uint32_t>(
          rng.NextUint64(incremental.size()));
      incremental.RemoveNode(idx);
      mirror_of(incremental.id(idx)).alive = false;
    } else {
      uint32_t idx = static_cast<uint32_t>(
          rng.NextUint64(incremental.size()));
      incremental.MarkCrashed(idx);
      mirror_of(incremental.id(idx)).alive = false;
      EXPECT_TRUE(incremental.crashed(idx));
    }
  }

  dht::Directory rebuilt(mirror);
  ASSERT_EQ(incremental.size(), rebuilt.size());
  ASSERT_EQ(incremental.alive_count(), rebuilt.alive_count());

  // Handles differ between the two directories (rebuild re-sorts), so
  // compare by node id everywhere.
  auto id_of = [](const dht::Directory& d, std::optional<uint32_t> idx) {
    return idx.has_value() ? d.id(*idx) : dht::NodeId();
  };
  util::Rng probe_rng(41);
  for (int probe = 0; probe < 300; ++probe) {
    dht::RingPos pos =
        (static_cast<dht::RingPos>(probe_rng.NextUint64()) << 64) |
        probe_rng.NextUint64();
    EXPECT_EQ(id_of(incremental, incremental.SuccessorIndex(pos)),
              id_of(rebuilt, rebuilt.SuccessorIndex(pos)));
    EXPECT_EQ(id_of(incremental, incremental.PredecessorIndex(pos)),
              id_of(rebuilt, rebuilt.PredecessorIndex(pos)));
    EXPECT_EQ(id_of(incremental, incremental.NearestIndex(pos)),
              id_of(rebuilt, rebuilt.NearestIndex(pos)));

    dht::Region region = dht::Region::Centered(pos, 0.04);
    EXPECT_EQ(incremental.CountInRegion(region),
              rebuilt.CountInRegion(region));
    std::vector<uint32_t> a = incremental.NodesInRegion(region);
    std::vector<uint32_t> b = rebuilt.NodesInRegion(region);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(incremental.id(a[i]), rebuilt.id(b[i]));
    }
  }
  // Ring enumeration via NthAlive agrees end-to-end.
  for (size_t k = 0; k < incremental.alive_count(); ++k) {
    EXPECT_EQ(id_of(incremental, incremental.NthAlive(k)),
              id_of(rebuilt, rebuilt.NthAlive(k)));
  }
  EXPECT_FALSE(incremental.NthAlive(incremental.alive_count()).has_value());
}

TEST(DirectoryChurnEquivalenceTest, LargePopulationCountsStayExact) {
  // N large enough that narrow (16-bit, or int-truncated) arithmetic in
  // rank/count bookkeeping would corrupt results.
  const size_t kN = 70000;
  auto dir = test::MakeDirectory(kN, 51);
  EXPECT_EQ(dir->alive_count(), kN);

  util::Rng rng(52);
  size_t killed = 0;
  for (size_t i = 0; i < kN / 2; ++i) {
    uint32_t idx = static_cast<uint32_t>(rng.NextUint64(kN));
    if (dir->alive(idx)) {
      dir->RemoveNode(idx);
      ++killed;
    }
  }
  EXPECT_EQ(dir->alive_count(), kN - killed);

  // Full-ring region == alive population, and the two half-rings
  // partition it (catches prefix-count truncation).
  dht::Region full = dht::Region::Centered(0, 1.0);
  EXPECT_EQ(dir->CountInRegion(full), kN - killed);
  const dht::RingPos half = static_cast<dht::RingPos>(1) << 127;
  size_t lo = dir->CountAliveInRange(0, half);
  size_t hi = dir->CountAliveInRange(half, 0);
  EXPECT_EQ(lo + hi, kN - killed);
}

// ---------------------------------------------------------------------
// CAN incremental join/leave.

void ExpectValidPartition(const dht::CanOverlay& can,
                          const std::set<uint32_t>& members) {
  ASSERT_EQ(can.zone_count(), members.size());
  double area = 0;
  std::set<uint32_t> owners;
  for (uint32_t idx : members) {
    ASSERT_TRUE(can.HasZone(idx));
    const dht::CanOverlay::Zone& z = can.ZoneOfNode(idx);
    EXPECT_EQ(z.owner, idx);
    area += z.width() * z.height();
    owners.insert(z.owner);
    // The owner's own point lies in (or routes to) a zone; spot-check
    // that lookup by the zone's center returns this owner.
    EXPECT_EQ(can.OwnerOf((z.x0 + z.x1) / 2, (z.y0 + z.y1) / 2), idx);
  }
  EXPECT_EQ(owners, members);
  EXPECT_NEAR(area, 1.0, 1e-9);  // zones tile the torus
}

TEST(CanChurnTest, JoinLeaveSequenceMatchesRebuild) {
  const size_t kN = 300;
  auto dir = test::MakeDirectory(kN, 61);
  dht::CanOverlay can(dir.get());

  std::set<uint32_t> members;
  for (uint32_t i = 0; i < kN; ++i) members.insert(i);
  ExpectValidPartition(can, members);

  util::Rng rng(62);
  for (int step = 0; step < 500; ++step) {
    if (rng.NextDouble() < 0.5 && members.size() > 1) {
      uint32_t idx = *dir->NthAlive(rng.NextUint64(dir->alive_count()));
      can.RemoveNode(idx);
      dir->RemoveNode(idx);
      members.erase(idx);
    } else {
      // Re-join a departed node (if any).
      std::vector<uint32_t> dead;
      for (uint32_t i = 0; i < kN; ++i) {
        if (!dir->alive(i)) dead.push_back(i);
      }
      if (dead.empty()) continue;
      uint32_t idx = dead[rng.NextUint64(dead.size())];
      dir->SetAlive(idx, true);
      can.AddNode(idx);
      members.insert(idx);
    }
  }
  ExpectValidPartition(can, members);

  // From-scratch rebuild over the same survivor set: identical owner
  // set and an equally valid partition (zone shapes are path-dependent,
  // ownership is not).
  dht::CanOverlay rebuilt(dir.get());
  ExpectValidPartition(rebuilt, members);

  // Routing works on both partitions between random member pairs.
  util::Rng route_rng(63);
  for (int i = 0; i < 50; ++i) {
    uint32_t from = *dir->NthAlive(route_rng.NextUint64(dir->alive_count()));
    dht::NodeId key =
        dir->id(*dir->NthAlive(route_rng.NextUint64(dir->alive_count())));
    ASSERT_TRUE(can.Route(from, key).ok());
    ASSERT_TRUE(rebuilt.Route(from, key).ok());
  }
}

TEST(CanChurnTest, RemoveDownToOneAndRegrow) {
  auto dir = test::MakeDirectory(16, 71);
  dht::CanOverlay can(dir.get());
  for (uint32_t i = 1; i < 16; ++i) {
    can.RemoveNode(i);
    dir->RemoveNode(i);
  }
  ASSERT_EQ(can.zone_count(), 1u);
  const dht::CanOverlay::Zone& z = can.ZoneOfNode(0);
  EXPECT_DOUBLE_EQ(z.width() * z.height(), 1.0);  // whole torus again

  for (uint32_t i = 1; i < 16; ++i) {
    dir->SetAlive(i, true);
    can.AddNode(i);
  }
  std::set<uint32_t> members;
  for (uint32_t i = 0; i < 16; ++i) members.insert(i);
  ExpectValidPartition(can, members);
}

// ---------------------------------------------------------------------
// Satellite (c): O(C) colluder reassignment parity.

TEST(ColluderReassignTest, IncrementalMatchesClearAllPath) {
  auto network = test::MakeNetwork(2000, 0.03);
  ASSERT_NE(network, nullptr);
  const dht::Directory& dir = network->directory();
  const uint64_t c = network->params().c();

  for (uint64_t round = 0; round < 5; ++round) {
    // Historical path, simulated on the side: wipe everything, then
    // sample the same count from the same stream.
    util::Rng historical(900 + round);
    std::vector<bool> expected(dir.size(), false);
    for (size_t idx :
         historical.SampleIndices(network->params().n, c)) {
      expected[idx] = true;
    }

    util::Rng incremental(900 + round);
    network->ReassignColluders(incremental);

    size_t marked = 0;
    for (uint32_t i = 0; i < dir.size(); ++i) {
      EXPECT_EQ(dir.colluding(i), expected[i]) << "node " << i;
      marked += dir.colluding(i) ? 1 : 0;
    }
    EXPECT_EQ(marked, c);

    // ColluderIndices is the ascending list of marked nodes.
    const std::vector<uint32_t>& listed = network->ColluderIndices();
    EXPECT_EQ(listed.size(), c);
    EXPECT_TRUE(std::is_sorted(listed.begin(), listed.end()));
    for (uint32_t idx : listed) EXPECT_TRUE(dir.colluding(idx));
  }
}

// ---------------------------------------------------------------------
// ChurnDriver: determinism, CA issuance at join, pool provisioning.

sim::Parameters PoolParams(int threads) {
  sim::Parameters params;
  params.n = 600;
  params.churn_pool = 60;
  params.colluding_fraction = 0.01;
  params.cache_size = 64;
  params.seed = 77;
  params.threads = threads;
  return params;
}

TEST(ChurnDriverTest, PoolNodesProvisionedDeadWithoutCerts) {
  auto network = sim::Network::Build(PoolParams(1));
  ASSERT_TRUE(network.ok());
  const dht::Directory& dir = network.value()->directory();
  ASSERT_EQ(dir.size(), 660u);
  EXPECT_EQ(dir.alive_count(), 600u);
  // Pool handles are scattered across [0, size) — the directory sorts by
  // ring position — so identify them by state, not handle range: exactly
  // the 60 dead nodes lack certificates, and every alive node has one.
  size_t dead = 0;
  for (uint32_t i = 0; i < dir.size(); ++i) {
    EXPECT_GT(dir.serial(i), 0u);  // serial reserved at provisioning
    if (dir.alive(i)) {
      EXPECT_TRUE(dir.has_cert(i));
    } else {
      ++dead;
      EXPECT_FALSE(dir.has_cert(i));
      EXPECT_TRUE(dir.cert(i).ca_signature.empty());
    }
  }
  EXPECT_EQ(dead, 60u);
  // Dead pool nodes never collude.
  for (uint32_t idx : network.value()->ColluderIndices()) {
    EXPECT_TRUE(dir.alive(idx));
  }
}

TEST(ChurnDriverTest, JoinsIssueVerifiableCertificates) {
  auto network = sim::Network::Build(PoolParams(1));
  ASSERT_TRUE(network.ok());

  // Snapshot the pool before churn: the nodes without certificates.
  std::set<uint32_t> pool;
  {
    const dht::Directory& dir = network.value()->directory();
    for (uint32_t i = 0; i < dir.size(); ++i) {
      if (!dir.has_cert(i)) pool.insert(i);
    }
  }
  ASSERT_EQ(pool.size(), 60u);

  sim::ChurnDriver::Options options;
  options.join_rate_per_s = 3.0;
  options.leave_rate_per_s = 1.0;
  options.crash_rate_per_s = 1.0;
  sim::ChurnDriver driver(network.value().get(), nullptr, options);
  ASSERT_EQ(driver.standby_count(), 60u);

  driver.Run(300);
  const sim::ChurnDriver::Stats& stats = driver.stats();
  EXPECT_EQ(stats.events, 300u);
  EXPECT_GT(stats.joins, 0u);
  EXPECT_GT(stats.leaves, 0u);
  EXPECT_GT(stats.crashes, 0u);
  EXPECT_GT(stats.certs_issued, 0u);
  EXPECT_EQ(stats.final_alive, network.value()->directory().alive_count());

  // Every pool node that holds a certificate now was certified mid-run,
  // and the certificate verifies against the CA.
  const dht::Directory& dir = network.value()->directory();
  size_t certified_pool = 0;
  for (uint32_t i : pool) {
    if (!dir.has_cert(i)) continue;
    ++certified_pool;
    EXPECT_TRUE(network.value()->ca().Check(dir.cert(i)));
  }
  EXPECT_EQ(certified_pool, stats.certs_issued);
}

TEST(ChurnDriverTest, DigestIsIdenticalForAnyBuildThreadCount) {
  sim::ChurnDriver::Options options;
  options.join_rate_per_s = 2.0;
  options.leave_rate_per_s = 1.0;
  options.crash_rate_per_s = 1.0;

  std::optional<uint64_t> reference;
  std::optional<uint64_t> reference_alive;
  for (int threads : {1, 2, 4}) {
    auto network = sim::Network::Build(PoolParams(threads));
    ASSERT_TRUE(network.ok());
    sim::ChurnDriver driver(network.value().get(), nullptr, options);
    driver.Run(400);
    if (!reference.has_value()) {
      reference = driver.stats().digest;
      reference_alive = driver.stats().final_alive;
    } else {
      EXPECT_EQ(driver.stats().digest, *reference)
          << "threads=" << threads;
      EXPECT_EQ(driver.stats().final_alive, *reference_alive);
    }
  }
}

TEST(ChurnDriverTest, BatchVerifierPathKeepsDigestBitIdentical) {
  // Satellite: routing the attested-join signature checks through the
  // shared crypto::BatchVerifier (inline drain or worker threads) must
  // not change a single churn outcome — the FNV event digest is pinned
  // against the unbatched reference for every verifier shape.
  sim::ChurnDriver::Options options;
  options.join_rate_per_s = 2.0;
  options.leave_rate_per_s = 1.0;
  options.crash_rate_per_s = 1.0;

  auto run = [&options](crypto::BatchVerifier::Options* batch) {
    auto network = sim::Network::Build(PoolParams(1));
    EXPECT_TRUE(network.ok());
    std::unique_ptr<crypto::BatchVerifier> verifier;
    sim::ChurnDriver::Options run_options = options;
    if (batch != nullptr) {
      verifier = std::make_unique<crypto::BatchVerifier>(
          &network.value()->provider(), *batch);
      run_options.verifier = verifier.get();
    }
    sim::ChurnDriver driver(network.value().get(), nullptr, run_options);
    driver.Run(400);
    return std::make_pair(driver.stats().digest, driver.stats().joins);
  };

  auto [reference, reference_joins] = run(nullptr);
  EXPECT_GT(reference_joins, 0u);

  crypto::BatchVerifier::Options inline_drain;
  inline_drain.workers = 0;
  EXPECT_EQ(run(&inline_drain).first, reference) << "inline drain";

  crypto::BatchVerifier::Options threaded;
  threaded.workers = 3;
  threaded.batch_size = 8;  // force multiple flushes per drain
  auto [threaded_digest, threaded_joins] = run(&threaded);
  EXPECT_EQ(threaded_digest, reference) << "3 workers";
  EXPECT_EQ(threaded_joins, reference_joins);
}

TEST(ChurnDriverTest, ConcurrentDriversDoNotInterfere) {
  // Two independent worlds churned from two threads: any hidden shared
  // static (the chord hop bound was one) breaks the digest match with
  // the serial reference. Runs under TSan in CI.
  sim::ChurnDriver::Options options;
  options.join_rate_per_s = 2.0;
  options.leave_rate_per_s = 1.0;
  options.crash_rate_per_s = 1.0;

  auto run = [&options](uint64_t seed) {
    sim::Parameters params = PoolParams(1);
    params.seed = seed;
    auto network = sim::Network::Build(params);
    if (!network.ok()) return uint64_t{0};
    sim::ChurnDriver driver(network.value().get(), nullptr, options);
    driver.Run(250);
    return driver.stats().digest;
  };

  uint64_t serial_a = run(101);
  uint64_t serial_b = run(202);

  uint64_t threaded_a = 0, threaded_b = 0;
  std::thread ta([&] { threaded_a = run(101); });
  std::thread tb([&] { threaded_b = run(202); });
  ta.join();
  tb.join();
  EXPECT_EQ(threaded_a, serial_a);
  EXPECT_EQ(threaded_b, serial_b);
  EXPECT_NE(serial_a, serial_b);
}

TEST(ChurnDriverTest, VirtualClockAdvancesOnSimNetwork) {
  auto network = sim::Network::Build(PoolParams(1));
  ASSERT_TRUE(network.ok());
  net::LinkModel link;
  link.jitter_mean_us = 0;
  link.drop_probability = 0.0;
  net::SimNetwork simnet(660, link, net::RetryPolicy{}, /*seed=*/5);

  sim::ChurnDriver::Options options;
  options.join_rate_per_s = 1.0;
  options.leave_rate_per_s = 1.0;
  options.crash_rate_per_s = 1.0;
  sim::ChurnDriver driver(network.value().get(), &simnet, options);
  driver.Run(50);
  EXPECT_EQ(simnet.now_us(), driver.now_us());
  EXPECT_GT(driver.now_us(), 0u);
  EXPECT_EQ(driver.stats().virtual_us, driver.now_us());
}

}  // namespace
}  // namespace sep2p
