#include "core/ktable.h"

#include <gtest/gtest.h>

#include "core/probability.h"
#include "tests/test_util.h"

namespace sep2p::core {
namespace {

TEST(KTableTest, EntriesStartAtTwoAndIncrease) {
  KTable table = KTable::Build(100000, 1000, 1e-6);
  ASSERT_FALSE(table.entries().empty());
  EXPECT_EQ(table.entries().front().k, 2);
  double prev_rs = 0;
  int prev_k = 1;
  for (const KTable::Entry& entry : table.entries()) {
    EXPECT_EQ(entry.k, prev_k + 1);
    EXPECT_GT(entry.rs, prev_rs);
    prev_k = entry.k;
    prev_rs = entry.rs;
  }
}

TEST(KTableTest, EveryEntryHonorsAlpha) {
  KTable table = KTable::Build(100000, 1000, 1e-6);
  for (const KTable::Entry& entry : table.entries()) {
    EXPECT_LE(PC(entry.k, 1000, entry.rs), 1e-6 * 1.01) << "k=" << entry.k;
  }
}

TEST(KTableTest, KMaxRegionIsPopulatedWithHighProbability) {
  KTable table = KTable::Build(100000, 1000, 1e-6);
  const KTable::Entry& last = table.entries().back();
  EXPECT_GE(PL(last.k, 100000, last.rs), 1.0 - 1e-6);
}

TEST(KTableTest, SingleColluderGivesKTwoFullRing) {
  // Paper: "with a single corrupted node ... k = C + 1" (= 2).
  KTable table = KTable::Build(10000, 1, 1e-6);
  EXPECT_EQ(table.k_max(), 2);
  EXPECT_DOUBLE_EQ(table.entries().front().rs, 1.0);
}

TEST(KTableTest, KDependsOnColluderFractionNotN) {
  // Paper Figure 6 insight: scaling N and C together leaves k unchanged.
  KTable small = KTable::Build(10000, 100, 1e-6);
  KTable large = KTable::Build(1000000, 10000, 1e-6);
  EXPECT_EQ(small.k_max(), large.k_max());
}

TEST(KTableTest, SmallerAlphaNeedsLargerOrEqualKMax) {
  KTable loose = KTable::Build(100000, 1000, 1e-6);
  KTable tight = KTable::Build(100000, 1000, 1e-10);
  EXPECT_GE(tight.k_max(), loose.k_max());
}

TEST(KTableTest, MoreColludersNeedLargerKMax) {
  KTable few = KTable::Build(100000, 100, 1e-6);
  KTable many = KTable::Build(100000, 10000, 1e-6);
  EXPECT_GT(many.k_max(), few.k_max());
}

TEST(KTableTest, KMaxStaysSmallAtPaperScale) {
  // Paper: k <= 6 for C% <= 1% even at alpha = 1e-10 — actually k stays
  // single digit; assert the headline "generally lower than 6" at 1e-6.
  KTable table = KTable::Build(1000000, 10000, 1e-6);
  EXPECT_LE(table.k_max(), 6);
}

TEST(KTableTest, RegionSizeForKLookups) {
  KTable table = KTable::Build(100000, 1000, 1e-6);
  for (const KTable::Entry& entry : table.entries()) {
    auto rs = table.RegionSizeForK(entry.k);
    ASSERT_TRUE(rs.ok());
    EXPECT_DOUBLE_EQ(*rs, entry.rs);
  }
  EXPECT_FALSE(table.RegionSizeForK(1).ok());
  EXPECT_FALSE(table.RegionSizeForK(999).ok());
}

TEST(KTableTest, ChooseForPointFindsUsableEntry) {
  auto dir = test::MakeDirectory(5000);
  KTable table = KTable::Build(5000, 50, 1e-6);
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t node = rng.NextUint64(dir->size());
    KTable::Choice choice =
        table.ChooseForPoint(*dir, dir->pos(node));
    ASSERT_TRUE(choice.found);
    // The chosen entry's region truly contains enough other nodes.
    dht::Region region =
        dht::Region::Centered(dir->pos(node), choice.entry.rs);
    size_t population = dir->CountInRegion(region);
    EXPECT_GE(population, static_cast<size_t>(choice.entry.k));
  }
}

TEST(KTableTest, ChooseForPointExcludesCenterNode) {
  // A 2-colluder table on a tiny network: the node itself must not count
  // towards its own quorum.
  auto dir = test::MakeDirectory(100);
  KTable table = KTable::Build(100, 2, 1e-3);
  KTable::Choice choice = table.ChooseForPoint(*dir, dir->pos(0));
  ASSERT_TRUE(choice.found);
  EXPECT_GE(choice.population, static_cast<size_t>(choice.entry.k));
}

TEST(KTableTest, DenserNeighborhoodsGetSmallerK) {
  // Statistical: averaging the chosen k over many nodes must be below
  // k_max (the whole point of the k-table optimization).
  auto dir = test::MakeDirectory(20000);
  KTable table = KTable::Build(20000, 200, 1e-6);
  double sum_k = 0;
  int samples = 200;
  util::Rng rng(2);
  for (int i = 0; i < samples; ++i) {
    uint32_t node = rng.NextUint64(dir->size());
    KTable::Choice choice = table.ChooseForPoint(*dir, dir->pos(node));
    ASSERT_TRUE(choice.found);
    sum_k += choice.entry.k;
  }
  EXPECT_LT(sum_k / samples, table.k_max());
}

}  // namespace
}  // namespace sep2p::core
