#include "core/selection.h"

#include <gtest/gtest.h>

#include <set>

#include "core/verification.h"
#include "dht/region.h"
#include "tests/test_util.h"

namespace sep2p::core {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/3000, /*c_fraction=*/0.01,
                                 /*cache=*/256);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  ProtocolContext ctx_;
  std::unique_ptr<sim::Network> network_;
  util::Rng rng_{11};
};

TEST_F(SelectionTest, SelectsExactlyAActors) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->val.actor_count(), ctx_.actor_count);
  EXPECT_EQ(outcome->actor_indices.size(),
            static_cast<size_t>(ctx_.actor_count));
}

TEST_F(SelectionTest, ActorsAreDistinct) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  std::set<uint32_t> unique(outcome->actor_indices.begin(),
                            outcome->actor_indices.end());
  EXPECT_EQ(unique.size(), outcome->actor_indices.size());
}

TEST_F(SelectionTest, ActorsAreLegitimateForR3) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  dht::Region r3 = dht::Region::Centered(
      outcome->val.SetterPoint().ring_pos(), ctx_.rs3);
  for (uint32_t actor : outcome->actor_indices) {
    EXPECT_TRUE(r3.Contains(network_->directory().pos(actor)));
  }
}

TEST_F(SelectionTest, SlsAreLegitimateForR2) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  dht::Region r2 = dht::Region::Centered(
      outcome->val.SetterPoint().ring_pos(), outcome->val.rs2);
  for (const auto& att : outcome->val.attestations) {
    EXPECT_TRUE(r2.Contains(att.cert.NodeIdFromSubject().ring_pos()));
  }
}

TEST_F(SelectionTest, VerificationSucceedsAndCostsExactlyTwoK) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  auto cost = VerifyActorList(ctx_, outcome->val);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * outcome->val.k());

  // And the cost model matches the provider's actual operation count.
  network_->provider().meter().Reset();
  auto again = VerifyActorList(ctx_, outcome->val);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(network_->provider().meter().asym_ops(),
            static_cast<uint64_t>(2 * outcome->val.k()));
}

TEST_F(SelectionTest, SetterIsOwnerOfHashedRandom) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->relocations, 0);
  auto owner = network_->directory().SuccessorIndex(
      outcome->val.SetterPoint().ring_pos());
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(outcome->setter_index, *owner);
}

TEST_F(SelectionTest, DifferentTriggersSelectDifferentRegions) {
  SelectionProtocol protocol(ctx_);
  auto a = protocol.Run(5, rng_);
  auto b = protocol.Run(6, rng_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->val.rnd_t, b->val.rnd_t);
  std::set<uint32_t> actors_a(a->actor_indices.begin(),
                              a->actor_indices.end());
  int overlap = 0;
  for (uint32_t x : b->actor_indices) overlap += actors_a.count(x);
  // Two random R3 regions of ~256/3000 of the ring almost never coincide.
  EXPECT_LT(overlap, ctx_.actor_count / 2);
}

TEST_F(SelectionTest, BuildActorListDeterministicAcrossBuilders) {
  std::vector<std::vector<crypto::PublicKey>> lists(3);
  util::Rng rng(3);
  crypto::SimProvider provider;
  for (auto& list : lists) {
    for (int i = 0; i < 20; ++i) {
      list.push_back(provider.GenerateKeyPair(rng)->pub);
    }
  }
  crypto::Hash256 rnd_s = crypto::Hash256::Of("round");
  auto a = BuildActorList(lists, rnd_s, 10);
  auto b = BuildActorList(lists, rnd_s, 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
}

TEST_F(SelectionTest, BuildActorListOrderIndependentOfListOrder) {
  std::vector<std::vector<crypto::PublicKey>> lists(2);
  util::Rng rng(4);
  crypto::SimProvider provider;
  for (auto& list : lists) {
    for (int i = 0; i < 15; ++i) {
      list.push_back(provider.GenerateKeyPair(rng)->pub);
    }
  }
  crypto::Hash256 rnd_s = crypto::Hash256::Of("x");
  auto a = BuildActorList(lists, rnd_s, 8);
  std::swap(lists[0], lists[1]);
  auto b = BuildActorList(lists, rnd_s, 8);
  EXPECT_EQ(a, b);  // union + sort: the SLs' message order is irrelevant
}

TEST_F(SelectionTest, RandomnessOfSortKeyChangesSelection) {
  std::vector<std::vector<crypto::PublicKey>> lists(1);
  util::Rng rng(5);
  crypto::SimProvider provider;
  for (int i = 0; i < 64; ++i) {
    lists[0].push_back(provider.GenerateKeyPair(rng)->pub);
  }
  auto a = BuildActorList(lists, crypto::Hash256::Of("round-1"), 8);
  auto b = BuildActorList(lists, crypto::Hash256::Of("round-2"), 8);
  EXPECT_NE(a, b);  // unpredictability comes from RND_S
}

TEST_F(SelectionTest, CollusionHidingCacheEntriesIsDefeated) {
  // A corrupted SL that reports only colluders in CL_j gains nothing: at
  // least one honest SL contributes its full candidate list, so the
  // union restores (nearly) all honest candidates — the corrupted-actor
  // count cannot grow beyond edge noise, and the contract always holds.
  SelectionProtocol protocol(ctx_);
  SelectionOptions honest;
  SelectionOptions hiding;
  hiding.colluding_sls_hide_honest = true;

  int honest_corrupted = 0, hiding_corrupted = 0;
  for (uint32_t trigger = 0; trigger < 15; ++trigger) {
    util::Rng rng_a(900 + trigger), rng_b(900 + trigger);
    auto a = protocol.Run(trigger, rng_a, honest);
    auto b = protocol.Run(trigger, rng_b, hiding);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(b->val.actor_count(), ctx_.actor_count);
    EXPECT_TRUE(VerifyActorList(ctx_, b->val).ok());
    for (uint32_t actor : a->actor_indices) {
      honest_corrupted += network_->directory().colluding(actor);
    }
    for (uint32_t actor : b->actor_indices) {
      hiding_corrupted += network_->directory().colluding(actor);
    }
  }
  // 15 runs x 8 actors at C% = 1%: ideal ~1.2 corrupted in total. The
  // hiding adversary must stay in the same regime (far from controlling
  // the lists), not merely "not much worse".
  EXPECT_LE(hiding_corrupted, honest_corrupted + 5);
  EXPECT_LE(hiding_corrupted, 12);  // << A * runs = 120
}

TEST_F(SelectionTest, SmallR3TriggersRelocation) {
  ProtocolContext tight = ctx_;
  tight.actor_count = 8;
  // R3 sized for ~10 expected candidates against A = 8: relocations
  // become likely; run several triggers and require at least one
  // relocation overall.
  tight.rs3 = 10.0 / 3000.0;
  tight.max_relocations = 64;
  SelectionProtocol protocol(tight);
  int total_relocations = 0;
  for (uint32_t trigger = 0; trigger < 10; ++trigger) {
    auto outcome = protocol.Run(trigger, rng_);
    if (outcome.ok()) {
      total_relocations += outcome->relocations;
      // Even after relocating, the contract holds.
      EXPECT_EQ(outcome->val.actor_count(), tight.actor_count);
      auto cost = VerifyActorList(tight, outcome->val);
      EXPECT_TRUE(cost.ok()) << cost.status().ToString();
    }
  }
  EXPECT_GT(total_relocations, 0);
}

TEST_F(SelectionTest, RelocationBudgetExhaustionFails) {
  ProtocolContext impossible = ctx_;
  impossible.actor_count = 2000;  // more than any R3 can hold
  impossible.rs3 = 8.0 / 3000.0;
  impossible.max_relocations = 3;
  SelectionProtocol protocol(impossible);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SelectionTest, SetupCostAccountsVrandRoutingAndSlWork) {
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_);
  ASSERT_TRUE(outcome.ok());
  const int k = outcome->val.k();
  // Lower bounds: vrand (4 msg rounds) + 5 SL rounds + signatures.
  EXPECT_GE(outcome->cost.msg_latency, 9.0);
  EXPECT_GE(outcome->cost.msg_work, 9.0 * k);
  EXPECT_GE(outcome->cost.crypto_work, 3.0 * k);
  // Latency stays bounded (paper: ~20 crypto ops, ~30 messages).
  EXPECT_LE(outcome->cost.crypto_latency, 40.0);
  EXPECT_LE(outcome->cost.msg_latency, 60.0);
}

TEST_F(SelectionTest, FailureInjectionAbortsCleanly) {
  net::FailureModel always(1.0, 5);
  SelectionOptions options;
  options.failures = &always;
  SelectionProtocol protocol(ctx_);
  auto outcome = protocol.Run(5, rng_, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace sep2p::core
