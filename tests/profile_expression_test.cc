#include "apps/profile_expression.h"

#include <gtest/gtest.h>

namespace sep2p::apps {
namespace {

std::set<std::string> Concepts(std::initializer_list<const char*> names) {
  std::set<std::string> out;
  for (const char* name : names) out.insert(name);
  return out;
}

TEST(ProfileExpressionTest, SingleConcept) {
  auto expr = ProfileExpression::Parse("pilot");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"pilot"})));
  EXPECT_FALSE(expr->Matches(Concepts({"academic"})));
}

TEST(ProfileExpressionTest, AndRequiresBoth) {
  auto expr = ProfileExpression::Parse("pilot AND age:40s");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"pilot", "age:40s"})));
  EXPECT_FALSE(expr->Matches(Concepts({"pilot"})));
  EXPECT_FALSE(expr->Matches(Concepts({"age:40s"})));
}

TEST(ProfileExpressionTest, OrRequiresEither) {
  auto expr = ProfileExpression::Parse("paris OR lyon");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"paris"})));
  EXPECT_TRUE(expr->Matches(Concepts({"lyon"})));
  EXPECT_FALSE(expr->Matches(Concepts({"nice"})));
}

TEST(ProfileExpressionTest, NotNegates) {
  auto expr = ProfileExpression::Parse("academic AND NOT retired");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"academic"})));
  EXPECT_FALSE(expr->Matches(Concepts({"academic", "retired"})));
}

TEST(ProfileExpressionTest, PrecedenceNotOverAndOverOr) {
  // a OR b AND NOT c  ==  a OR (b AND (NOT c))
  auto expr = ProfileExpression::Parse("a OR b AND NOT c");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"a", "c"})));     // a wins
  EXPECT_TRUE(expr->Matches(Concepts({"b"})));           // b AND NOT c
  EXPECT_FALSE(expr->Matches(Concepts({"b", "c"})));     // c kills b-branch
  EXPECT_FALSE(expr->Matches(Concepts({"c"})));
}

TEST(ProfileExpressionTest, ParenthesesOverridePrecedence) {
  auto expr = ProfileExpression::Parse("(a OR b) AND c");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"a", "c"})));
  EXPECT_TRUE(expr->Matches(Concepts({"b", "c"})));
  EXPECT_FALSE(expr->Matches(Concepts({"a", "b"})));
}

TEST(ProfileExpressionTest, KeywordsAreCaseInsensitive) {
  auto expr = ProfileExpression::Parse("a and not b or c");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(Concepts({"a"})));
  EXPECT_TRUE(expr->Matches(Concepts({"c", "b"})));
  EXPECT_FALSE(expr->Matches(Concepts({"a", "b"})));
}

TEST(ProfileExpressionTest, ConceptsMayContainPunctuation) {
  auto expr = ProfileExpression::Parse(
      "occupation:pilot AND age:40-49 AND city:paris.fr");
  ASSERT_TRUE(expr.ok());
  EXPECT_TRUE(expr->Matches(
      Concepts({"occupation:pilot", "age:40-49", "city:paris.fr"})));
}

TEST(ProfileExpressionTest, PositiveConceptsExcludeNegated) {
  auto expr = ProfileExpression::Parse("a AND NOT b AND (c OR NOT d)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->positive_concepts(),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(expr->all_concepts(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(ProfileExpressionTest, DoubleNegationIsPositive) {
  auto expr = ProfileExpression::Parse("NOT NOT a");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->positive_concepts(), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(expr->Matches(Concepts({"a"})));
  EXPECT_FALSE(expr->Matches(Concepts({})));
}

TEST(ProfileExpressionTest, AbsenceOnlyExpressionsRejected) {
  EXPECT_FALSE(ProfileExpression::Parse("NOT a").ok());
  EXPECT_FALSE(ProfileExpression::Parse("NOT a AND NOT b").ok());
}

TEST(ProfileExpressionTest, SyntaxErrorsRejected) {
  for (const char* bad : {"", "AND", "a AND", "a OR OR b", "(a", "a)",
                          "a b", "a && b", "NOT", "()"}) {
    EXPECT_FALSE(ProfileExpression::Parse(bad).ok()) << "'" << bad << "'";
  }
}

TEST(ProfileExpressionTest, ToStringRoundTripsSemantics) {
  auto expr = ProfileExpression::Parse("a AND (b OR NOT c)");
  ASSERT_TRUE(expr.ok());
  auto reparsed = ProfileExpression::Parse(expr->ToString());
  ASSERT_TRUE(reparsed.ok());
  // Same truth table over the mentioned concepts.
  for (int mask = 0; mask < 8; ++mask) {
    std::set<std::string> cs;
    if (mask & 1) cs.insert("a");
    if (mask & 2) cs.insert("b");
    if (mask & 4) cs.insert("c");
    EXPECT_EQ(expr->Matches(cs), reparsed->Matches(cs)) << mask;
  }
}

}  // namespace
}  // namespace sep2p::apps
