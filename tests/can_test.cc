#include "dht/can.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/metrics.h"
#include "tests/test_util.h"

namespace sep2p::dht {
namespace {

TEST(CanTest, ZonesPartitionTheTorus) {
  auto dir = test::MakeDirectory(256);
  CanOverlay can(dir.get());
  EXPECT_EQ(can.zone_count(), 256u);

  double total_area = 0;
  for (size_t i = 0; i < can.zone_count(); ++i) {
    const CanOverlay::Zone& z = can.zone(i);
    EXPECT_GT(z.width(), 0);
    EXPECT_GT(z.height(), 0);
    total_area += z.width() * z.height();
  }
  EXPECT_NEAR(total_area, 1.0, 1e-9);
}

TEST(CanTest, EveryPointHasExactlyOneOwner) {
  auto dir = test::MakeDirectory(128);
  CanOverlay can(dir.get());
  util::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    uint32_t owner = can.OwnerOf(x, y);
    // The owner's zone must actually contain the point.
    EXPECT_TRUE(can.ZoneOfNode(owner).Contains(x, y));
  }
}

TEST(CanTest, ZoneOfNodeIsConsistentWithOwnership) {
  auto dir = test::MakeDirectory(64);
  CanOverlay can(dir.get());
  for (uint32_t i = 0; i < dir->size(); ++i) {
    const CanOverlay::Zone& z = can.ZoneOfNode(i);
    EXPECT_EQ(z.owner, i);
    double cx = (z.x0 + z.x1) / 2, cy = (z.y0 + z.y1) / 2;
    EXPECT_EQ(can.OwnerOf(cx, cy), i);
  }
}

TEST(CanTest, RouteReachesOwnerOfKey) {
  auto dir = test::MakeDirectory(400);
  CanOverlay can(dir.get());
  util::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t from = rng.NextUint64(dir->size());
    NodeId key = NodeId::Of("key-" + std::to_string(trial));
    auto route = can.Route(from, key);
    ASSERT_TRUE(route.ok()) << route.status().ToString();
    double tx, ty;
    CanOverlay::PointForId(key, &tx, &ty);
    EXPECT_EQ(route->dest_index, can.OwnerOf(tx, ty));
  }
}

TEST(CanTest, HopCountScalesLikeSqrtN) {
  util::Rng rng(3);
  sim::OnlineStats hops_small, hops_large;
  for (auto [n, stats] :
       {std::pair<size_t, sim::OnlineStats*>{100, &hops_small},
        std::pair<size_t, sim::OnlineStats*>{1600, &hops_large}}) {
    auto dir = test::MakeDirectory(n, /*seed=*/7);
    CanOverlay can(dir.get());
    for (int trial = 0; trial < 150; ++trial) {
      uint32_t from = rng.NextUint64(dir->size());
      NodeId key = NodeId::Of("k" + std::to_string(trial));
      auto route = can.Route(from, key);
      ASSERT_TRUE(route.ok());
      stats->Add(route->hops);
    }
  }
  // CAN (d=2) routes in O(sqrt N): 16x nodes -> about 4x hops, certainly
  // much more than Chord's log growth and much less than linear.
  EXPECT_GT(hops_large.mean(), hops_small.mean() * 1.5);
  EXPECT_LT(hops_large.mean(), hops_small.mean() * 10.0);
}

TEST(CanTest, RouteToOwnZoneIsZeroHops) {
  auto dir = test::MakeDirectory(64);
  CanOverlay can(dir.get());
  // Find a key owned by node 5 by probing its zone center.
  const CanOverlay::Zone& z = can.ZoneOfNode(5);
  double cx = (z.x0 + z.x1) / 2, cy = (z.y0 + z.y1) / 2;
  uint32_t owner = can.OwnerOf(cx, cy);
  EXPECT_EQ(owner, 5u);
}

TEST(CanTest, PointForIdDeterministic) {
  NodeId id = NodeId::Of("abc");
  double x1, y1, x2, y2;
  CanOverlay::PointForId(id, &x1, &y1);
  CanOverlay::PointForId(id, &x2, &y2);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(y1, y2);
  EXPECT_GE(x1, 0.0);
  EXPECT_LT(x1, 1.0);
  EXPECT_GE(y1, 0.0);
  EXPECT_LT(y1, 1.0);
}

}  // namespace
}  // namespace sep2p::dht
