// Tests for the application message runtime: typed wire codecs,
// dispatch precedence, and the logical-cost measurement rules.

#include "node/app_runtime.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/messages.h"
#include "crypto/sealed.h"
#include "crypto/sim_provider.h"
#include "tests/test_util.h"

namespace sep2p::node {
namespace {

namespace msg = core::msg;

crypto::SealedMessage MakeSealed(util::Rng& rng) {
  crypto::SimProvider provider;
  auto pair = provider.GenerateKeyPair(rng);
  return crypto::SealForRecipient(pair->pub, {1, 2, 3, 4}, rng);
}

TEST(AppMessagesTest, SensingContributionRoundTrips) {
  util::Rng rng(1);
  msg::SensingContribution m;
  m.contribution_id = 0x1122334455667788ull;
  m.cell = 13;
  m.sealed = MakeSealed(rng);
  auto back = msg::DecodeSensingContribution(msg::Encode(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->contribution_id, m.contribution_id);
  EXPECT_EQ(back->cell, m.cell);
  EXPECT_EQ(back->sealed.recipient, m.sealed.recipient);
  EXPECT_EQ(back->sealed.nonce, m.sealed.nonce);
  EXPECT_EQ(back->sealed.ciphertext, m.sealed.ciphertext);
}

TEST(AppMessagesTest, SensingPartialRoundTripsIncludingMergedSlot) {
  msg::SensingPartial m;
  m.da_slot = msg::kMergedSlot;
  m.grid = 4;
  m.sums = {1.5, -2.25, 0.0, 1e9};
  m.counts = {3, 0, 1, 7};
  auto back = msg::DecodeSensingPartial(msg::Encode(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->da_slot, msg::kMergedSlot);
  EXPECT_EQ(back->grid, 4);
  EXPECT_EQ(back->sums, m.sums);
  EXPECT_EQ(back->counts, m.counts);
}

TEST(AppMessagesTest, ConceptMessagesRoundTrip) {
  msg::ConceptStore store;
  store.posting_id = 42;
  store.share_key = {'p', 'i', 'l', 'o', 't', '#', '0'};
  store.share_x = 3;
  store.share_data = {9, 8, 7};
  auto store_back = msg::DecodeConceptStore(msg::Encode(store));
  ASSERT_TRUE(store_back.ok());
  EXPECT_EQ(store_back->posting_id, 42u);
  EXPECT_EQ(store_back->share_key, store.share_key);
  EXPECT_EQ(store_back->share_x, 3);
  EXPECT_EQ(store_back->share_data, store.share_data);

  msg::ConceptQuery query;
  query.share_key = store.share_key;
  auto query_back = msg::DecodeConceptQuery(msg::Encode(query));
  ASSERT_TRUE(query_back.ok());
  EXPECT_EQ(query_back->share_key, store.share_key);

  msg::ConceptShares shares;
  shares.posting_ids = {7, 9};
  shares.shares.push_back(crypto::SecretShare{1, {1, 2}});
  shares.shares.push_back(crypto::SecretShare{2, {3, 4}});
  auto shares_back = msg::DecodeConceptShares(msg::Encode(shares));
  ASSERT_TRUE(shares_back.ok());
  EXPECT_EQ(shares_back->posting_ids, shares.posting_ids);
  ASSERT_EQ(shares_back->shares.size(), 2u);
  EXPECT_EQ(shares_back->shares[1].x, 2);
  EXPECT_EQ(shares_back->shares[1].data, (std::vector<uint8_t>{3, 4}));
}

TEST(AppMessagesTest, ProxyAndDeliveryRoundTrip) {
  util::Rng rng(3);
  msg::ProxyRelay relay;
  relay.contribution_id = 5;
  relay.recipient_index = 77;
  relay.sealed = MakeSealed(rng);
  auto relay_back = msg::DecodeProxyRelay(msg::Encode(relay));
  ASSERT_TRUE(relay_back.ok());
  EXPECT_EQ(relay_back->recipient_index, 77u);
  EXPECT_EQ(relay_back->sealed.ciphertext, relay.sealed.ciphertext);

  msg::SealedDelivery delivery;
  delivery.contribution_id = 5;
  delivery.sealed = relay.sealed;
  auto delivery_back = msg::DecodeSealedDelivery(msg::Encode(delivery));
  ASSERT_TRUE(delivery_back.ok());
  EXPECT_EQ(delivery_back->contribution_id, 5u);
  EXPECT_EQ(delivery_back->sealed.nonce, relay.sealed.nonce);
}

TEST(AppMessagesTest, DiffusionAndQueryMessagesRoundTrip) {
  msg::DiffusionOffer offer;
  offer.offer_id = 11;
  std::string expr = "pilot AND NOT retired";
  offer.expression.assign(expr.begin(), expr.end());
  offer.message = {'h', 'i'};
  auto offer_back = msg::DecodeDiffusionOffer(msg::Encode(offer));
  ASSERT_TRUE(offer_back.ok());
  EXPECT_EQ(offer_back->offer_id, 11u);
  EXPECT_EQ(offer_back->expression, offer.expression);
  EXPECT_EQ(offer_back->message, offer.message);

  msg::DiffusionAccept accept;
  accept.accepted = 1;
  auto accept_back = msg::DecodeDiffusionAccept(msg::Encode(accept));
  ASSERT_TRUE(accept_back.ok());
  EXPECT_EQ(accept_back->accepted, 1);

  msg::QueryAnswer answer;
  answer.da_slot = 2;
  answer.count = 10;
  answer.sum = 33.5;
  answer.min = -1.0;
  answer.max = 9.0;
  auto answer_back = msg::DecodeQueryAnswer(msg::Encode(answer));
  ASSERT_TRUE(answer_back.ok());
  EXPECT_EQ(answer_back->count, 10u);
  EXPECT_DOUBLE_EQ(answer_back->sum, 33.5);
  EXPECT_DOUBLE_EQ(answer_back->min, -1.0);
  EXPECT_DOUBLE_EQ(answer_back->max, 9.0);
}

TEST(AppMessagesTest, PeekTagValidatesHeader) {
  msg::AppAck ack;
  auto tag = msg::PeekTag(msg::Encode(ack));
  ASSERT_TRUE(tag.ok());
  EXPECT_EQ(*tag, msg::kTagAppAck);

  EXPECT_FALSE(msg::PeekTag({}).ok());
  EXPECT_FALSE(msg::PeekTag({1, 2, 3}).ok());
  EXPECT_FALSE(msg::PeekTag({'X', 'Y', 'Z', 0x20}).ok());
}

TEST(AppMessagesTest, CrossDecodingIsRejected) {
  msg::DiffusionAccept accept;
  EXPECT_FALSE(msg::DecodeQueryAnswer(msg::Encode(accept)).ok());
  msg::AppAck ack;
  EXPECT_FALSE(msg::DecodeSensingPartial(msg::Encode(ack)).ok());
}

TEST(AppRuntimeTest, NodeRegistrationWinsOverGlobal) {
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(16);
  AppRuntime runtime(&simnet);
  std::vector<int> global_hits, node_hits;
  runtime.Register(msg::kTagAppAck,
                   [&](uint32_t server, const std::vector<uint8_t>&)
                       -> std::optional<std::vector<uint8_t>> {
                     global_hits.push_back(server);
                     return msg::Encode(msg::AppAck{});
                   });
  runtime.RegisterNode(3, msg::kTagAppAck,
                       [&](uint32_t server, const std::vector<uint8_t>&)
                           -> std::optional<std::vector<uint8_t>> {
                         node_hits.push_back(server);
                         return msg::Encode(msg::AppAck{});
                       });

  EXPECT_TRUE(runtime.Call(0, 3, msg::Encode(msg::AppAck{})).ok);
  EXPECT_TRUE(runtime.Call(0, 5, msg::Encode(msg::AppAck{})).ok);
  EXPECT_EQ(node_hits, (std::vector<int>{3}));
  EXPECT_EQ(global_hits, (std::vector<int>{5}));

  // After unregistration the global handler serves node 3 again.
  runtime.UnregisterNode(3, msg::kTagAppAck);
  EXPECT_TRUE(runtime.Call(0, 3, msg::Encode(msg::AppAck{})).ok);
  EXPECT_EQ(global_hits, (std::vector<int>{5, 3}));
}

TEST(AppRuntimeTest, UnknownTagTimesOutLikeADeafNode) {
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(8);
  AppRuntime runtime(&simnet);
  auto rpc = runtime.Call(0, 1, msg::Encode(msg::AppAck{}));
  EXPECT_FALSE(rpc.ok);
  EXPECT_EQ(rpc.attempts, simnet.retry().max_attempts);
  EXPECT_GT(simnet.stats().timeouts, 0u);
}

TEST(AppRuntimeTest, CostChargesFollowTheMeasurementRules) {
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(8);
  AppRuntime runtime(&simnet);
  runtime.Register(msg::kTagAppAck,
                   [](uint32_t, const std::vector<uint8_t>&)
                       -> std::optional<std::vector<uint8_t>> {
                     return msg::Encode(msg::AppAck{});
                   });

  // Sequential call: latency AND work.
  runtime.Call(0, 1, msg::Encode(msg::AppAck{}));
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_latency, 1.0);
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_work, 1.0);

  // Parallel wave: work only, one unit per call.
  std::vector<AppRuntime::Outgoing> wave;
  for (uint32_t i = 0; i < 3; ++i) {
    wave.push_back({i, 1, msg::Encode(msg::AppAck{})});
  }
  runtime.CallBatch(wave);
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_latency, 1.0);
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_work, 4.0);

  // Routing leg: one unit per hop, on the critical path.
  runtime.AdvanceRoute(5);
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_latency, 6.0);
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_work, 9.0);

  // Out-of-band charge (e.g. VAL verification).
  runtime.Charge(net::Cost::WorkOnly(8, 0));
  EXPECT_DOUBLE_EQ(runtime.measured_cost().crypto_work, 8.0);
}

TEST(AppRuntimeTest, FailedRpcStillChargesTheLogicalMessage) {
  net::SimNetwork simnet = test::MakeSimNet(8, /*drop=*/1.0);
  AppRuntime runtime(&simnet);
  runtime.Register(msg::kTagAppAck,
                   [](uint32_t, const std::vector<uint8_t>&)
                       -> std::optional<std::vector<uint8_t>> {
                     return msg::Encode(msg::AppAck{});
                   });
  auto rpc = runtime.Call(0, 1, msg::Encode(msg::AppAck{}));
  EXPECT_FALSE(rpc.ok);
  // The paper's figures count the protocol message whether or not the
  // transport eventually gave up; retransmissions live in stats() only.
  EXPECT_DOUBLE_EQ(runtime.measured_cost().msg_work, 1.0);
  EXPECT_GT(simnet.stats().messages_sent, 1u);
}

TEST(AppRuntimeTest, CallBatchClockLandsOnSlowestCall) {
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(8);
  AppRuntime runtime(&simnet);
  runtime.Register(msg::kTagAppAck,
                   [](uint32_t, const std::vector<uint8_t>&)
                       -> std::optional<std::vector<uint8_t>> {
                     return msg::Encode(msg::AppAck{});
                   });
  const uint64_t before = simnet.now_us();
  std::vector<AppRuntime::Outgoing> wave;
  for (uint32_t i = 0; i < 4; ++i) {
    wave.push_back({i, (i + 1) % 8, msg::Encode(msg::AppAck{})});
  }
  auto results = runtime.CallBatch(wave);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) EXPECT_TRUE(r.ok);
  // Zero jitter: every branch takes exactly one round trip, and the
  // clock advanced by one round trip, not four.
  const uint64_t round_trip = 2 * simnet.link().base_latency_us +
                              simnet.link().process_us;
  EXPECT_EQ(simnet.now_us(), before + round_trip);
}

TEST(AppRuntimeTest, MessageIdsAreUniqueAndMonotonic) {
  net::SimNetwork simnet = test::MakeZeroFaultSimNet(4);
  AppRuntime runtime(&simnet);
  uint64_t prev = runtime.NextMessageId();
  for (int i = 0; i < 100; ++i) {
    uint64_t next = runtime.NextMessageId();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(CostDeltaTest, DeltaIsComponentWise) {
  net::Cost a;
  a.Step(2, 3);
  net::Cost b = a;
  b.Then(net::Cost::WorkOnly(1, 5));
  net::Cost d = net::Cost::Delta(b, a);
  EXPECT_DOUBLE_EQ(d.crypto_latency, 0.0);
  EXPECT_DOUBLE_EQ(d.msg_latency, 0.0);
  EXPECT_DOUBLE_EQ(d.crypto_work, 1.0);
  EXPECT_DOUBLE_EQ(d.msg_work, 5.0);
}

}  // namespace
}  // namespace sep2p::node
