#include "util/status.h"

#include <gtest/gtest.h>

namespace sep2p {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, SecurityViolationHasDedicatedCode) {
  Status s = Status::SecurityViolation("forged signature");
  EXPECT_EQ(s.code(), StatusCode::kSecurityViolation);
  EXPECT_NE(s.ToString().find("SECURITY_VIOLATION"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kSecurityViolation);
       ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Helper(bool fail) {
  SEP2P_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace sep2p
