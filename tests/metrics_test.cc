#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "sim/parameters.h"
#include "util/rng.h"

namespace sep2p::sim {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(42);
  EXPECT_DOUBLE_EQ(stats.mean(), 42);
  EXPECT_DOUBLE_EQ(stats.min(), 42);
  EXPECT_DOUBLE_EQ(stats.max(), 42);
  EXPECT_DOUBLE_EQ(stats.variance(), 0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  util::Rng rng(3);
  OnlineStats stats;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble() * 100 - 50;
    values.push_back(v);
    stats.Add(v);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= (values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-6);
}

TEST(PercentileTest, NearestRankOnSmallSets) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 1.0), 7.0);
  // Sorted {1, 2, 3, 4}: nearest rank for q=0.5 is the 2nd value.
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.75), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
}

TEST(PercentileTest, IndependentOfSampleOrder) {
  std::vector<double> a, b;
  for (int i = 0; i < 101; ++i) a.push_back(static_cast<double>(i));
  b.assign(a.rbegin(), a.rend());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(Percentile(a, q), Percentile(b, q));
  }
  EXPECT_DOUBLE_EQ(Percentile(a, 0.99), 99.0);
}

TEST(TablePrinterTest, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::Num(1.0), "1");
  EXPECT_EQ(TablePrinter::Num(1.5), "1.5");
  EXPECT_EQ(TablePrinter::Num(1.250, 2), "1.25");
  EXPECT_EQ(TablePrinter::Num(0.0), "0");
  EXPECT_EQ(TablePrinter::Num(100.0, 1), "100");
}

TEST(TablePrinterTest, PadsRowsToHeaderWidth) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only-one"});
  printer.Print();  // must not crash on short rows
  SUCCEED();
}

TEST(ParametersTest, DerivedQuantities) {
  Parameters params;
  params.n = 100000;
  params.colluding_fraction = 0.01;
  params.cache_size = 512;
  EXPECT_EQ(params.c(), 1000u);
  EXPECT_NEAR(params.rs3(), 0.00512, 1e-12);

  params.colluding_fraction = 1e-12;
  EXPECT_EQ(params.c(), 1u);  // floor of at least one colluder

  params.cache_size = 200000;
  EXPECT_DOUBLE_EQ(params.rs3(), 1.0);  // saturates at the full ring
}

TEST(ParametersTest, ToStringMentionsEverything) {
  Parameters params;
  std::string s = params.ToString();
  EXPECT_NE(s.find("N="), std::string::npos);
  EXPECT_NE(s.find("C="), std::string::npos);
  EXPECT_NE(s.find("A="), std::string::npos);
  EXPECT_NE(s.find("alpha="), std::string::npos);
  EXPECT_NE(s.find("chord"), std::string::npos);
}

}  // namespace
}  // namespace sep2p::sim
