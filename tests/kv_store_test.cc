#include "dht/kv_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace sep2p::dht {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test::MakeDirectory(500);
    chord_ = std::make_unique<ChordOverlay>(dir_.get());
  }

  std::unique_ptr<Directory> dir_;
  std::unique_ptr<ChordOverlay> chord_;
};

TEST_F(KvStoreTest, PutGetRoundTrip) {
  KvStore store(dir_.get(), chord_.get());
  ASSERT_TRUE(store.Put(3, "user:42:profile", {1, 2, 3}).ok());
  auto got = store.Get(99, "user:42:profile");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->value.has_value());
  EXPECT_EQ(*got->value, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(KvStoreTest, MissingKeyIsAuthoritativeMiss) {
  KvStore store(dir_.get(), chord_.get());
  auto got = store.Get(5, "nothing-here");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->value.has_value());
}

TEST_F(KvStoreTest, PutOverwrites) {
  KvStore store(dir_.get(), chord_.get());
  ASSERT_TRUE(store.Put(1, "k", {1}).ok());
  ASSERT_TRUE(store.Put(2, "k", {2}).ok());
  auto got = store.Get(3, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got->value, (std::vector<uint8_t>{2}));
}

TEST_F(KvStoreTest, RemoveDeletesEverywhere) {
  KvStore store(dir_.get(), chord_.get(), /*replication=*/3);
  ASSERT_TRUE(store.Put(1, "k", {7}).ok());
  ASSERT_TRUE(store.Remove(2, "k").ok());
  auto got = store.Get(3, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->value.has_value());
}

TEST_F(KvStoreTest, KeysScatterAcrossNodes) {
  KvStore store(dir_.get(), chord_.get());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(store.Put(0, "key-" + std::to_string(i), {1}).ok());
  }
  // No node should hoard the keyspace (hashing spreads keys).
  size_t max_stored = 0;
  for (uint32_t i = 0; i < dir_->size(); ++i) {
    max_stored = std::max(max_stored, store.StoredCount(i));
  }
  EXPECT_LE(max_stored, 6u);
}

TEST_F(KvStoreTest, ReplicationSurvivesPrimaryDeath) {
  KvStore store(dir_.get(), chord_.get(), /*replication=*/3);
  ASSERT_TRUE(store.Put(1, "precious", {9, 9}).ok());

  // Kill whichever node answers first; the value must still be served.
  auto first = store.Get(2, "precious");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->value.has_value());
  dir_->SetAlive(first->replica_index, false);

  auto second = store.Get(2, "precious");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->value.has_value());
  EXPECT_EQ(*second->value, (std::vector<uint8_t>{9, 9}));
  EXPECT_NE(second->replica_index, first->replica_index);
  dir_->SetAlive(first->replica_index, true);
}

TEST_F(KvStoreTest, SingleReplicaLosesDataOnDeath) {
  // The contrast that motivates replication.
  KvStore store(dir_.get(), chord_.get(), /*replication=*/1);
  ASSERT_TRUE(store.Put(1, "fragile", {5}).ok());
  auto first = store.Get(2, "fragile");
  ASSERT_TRUE(first.ok());
  dir_->SetAlive(first->replica_index, false);

  auto second = store.Get(2, "fragile");
  // Routing lands on the dead node's successor, who never held the key.
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->value.has_value());
  dir_->SetAlive(first->replica_index, true);
}

TEST_F(KvStoreTest, CostCountsRoutingPerReplica) {
  KvStore one(dir_.get(), chord_.get(), 1);
  KvStore three(dir_.get(), chord_.get(), 3);
  auto c1 = one.Put(0, "k", {1});
  auto c3 = three.Put(0, "k", {1});
  ASSERT_TRUE(c1.ok() && c3.ok());
  EXPECT_GT(c3->msg_work, c1->msg_work * 1.5);
}

TEST_F(KvStoreTest, WorksOverCanOverlayToo) {
  CanOverlay can(dir_.get());
  KvStore store(dir_.get(), &can, 2);
  ASSERT_TRUE(store.Put(3, "via-can", {4, 4}).ok());
  auto got = store.Get(7, "via-can");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->value.has_value());
  EXPECT_EQ(*got->value, (std::vector<uint8_t>{4, 4}));
}

}  // namespace
}  // namespace sep2p::dht
