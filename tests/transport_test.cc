// TcpTransport integration tests: the SAME protocol translation units
// that run against the simulator run here over real loopback sockets
// between several TcpTransport instances (one per emulated "process",
// all inside this test binary — node i is hosted by transport i % P).
//
// The suite name matters: CI's TSan job selects it via the
// `|TcpTransport` filter, so driver-thread vs service-thread races are
// caught under instrumentation.

#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "apps/proxy.h"
#include "apps/query.h"
#include "core/messages.h"
#include "core/protocol_service.h"
#include "core/selection.h"
#include "node/app_runtime.h"
#include "node/join.h"
#include "node/pdms_node.h"
#include "sim/network.h"
#include "util/rng.h"

namespace sep2p {
namespace {

net::RetryPolicy FastRetry() {
  net::RetryPolicy retry;
  retry.timeout_us = 2'000'000;  // generous for TSan-slowed loopback
  retry.max_attempts = 2;
  retry.backoff_base_us = 10'000;
  retry.jitter_fraction = 0.0;
  return retry;
}

// P bare transports in this process, fully meshed over ephemeral
// loopback ports, no protocol state on top.
std::vector<std::unique_ptr<net::TcpTransport>> MakeBareCluster(
    uint32_t processes, uint32_t nodes) {
  std::vector<std::unique_ptr<net::TcpTransport>> cluster;
  for (uint32_t p = 0; p < processes; ++p) {
    net::TcpTransport::Options options;
    options.node_count = nodes;
    options.process_count = processes;
    options.process_index = p;
    options.listen_port = 0;  // ephemeral: read back after Start
    options.seed = 1000 + p;
    options.retry = FastRetry();
    cluster.push_back(std::make_unique<net::TcpTransport>(options));
  }
  for (auto& t : cluster) EXPECT_TRUE(t->Start().ok());
  for (uint32_t p = 0; p < processes; ++p) {
    for (uint32_t q = 0; q < processes; ++q) {
      if (p == q) continue;
      cluster[p]->SetPeer(q, "127.0.0.1", cluster[q]->listen_port());
    }
  }
  for (auto& t : cluster) EXPECT_TRUE(t->WaitForPeers(20000).ok());
  return cluster;
}

net::Transport::Handler EchoWithServer() {
  return [](uint32_t server, const std::vector<uint8_t>& request)
             -> std::optional<std::vector<uint8_t>> {
    std::vector<uint8_t> reply = request;
    reply.push_back(static_cast<uint8_t>(server));
    return reply;
  };
}

TEST(TcpTransportTest, RegisteredDispatchLocalAndRemote) {
  auto cluster = MakeBareCluster(/*processes=*/2, /*nodes=*/6);
  for (auto& t : cluster) {
    t->Register(core::msg::kTagAppAck, EchoWithServer());
  }
  const std::vector<uint8_t> request =
      core::msg::Encode(core::msg::AppAck{});

  // Node 2 lives in process 0: the call short-circuits through the
  // local dispatch table without a socket.
  net::Transport::RpcResult local = cluster[0]->Call(0, 2, request);
  ASSERT_TRUE(local.ok);
  ASSERT_EQ(local.reply.size(), request.size() + 1);
  EXPECT_EQ(local.reply.back(), 2);

  // Node 3 lives in process 1: the same call crosses a real socket and
  // is answered by the peer transport's registered handler.
  net::Transport::RpcResult remote = cluster[0]->Call(0, 3, request);
  ASSERT_TRUE(remote.ok);
  ASSERT_EQ(remote.reply.size(), request.size() + 1);
  EXPECT_EQ(remote.reply.back(), 3);

  // A per-call handler must be IGNORED — the server process answers
  // from its own table (the honest-execution contract).
  net::Transport::RpcResult ignored = cluster[0]->Call(
      0, 3, request,
      [](uint32_t, const std::vector<uint8_t>&)
          -> std::optional<std::vector<uint8_t>> {
        return std::vector<uint8_t>{0xff};
      });
  ASSERT_TRUE(ignored.ok);
  EXPECT_EQ(ignored.reply.back(), 3);

  for (auto& t : cluster) t->Stop();  // joins threads: stats safe to read
  EXPECT_GE(cluster[0]->stats().messages_sent, 3u);
  EXPECT_GT(cluster[1]->stats().messages_delivered, 0u);
  EXPECT_EQ(cluster[0]->stats().rpc_failures, 0u);
}

TEST(TcpTransportTest, UnknownTagAndGarbageAreRefusedCleanly) {
  auto cluster = MakeBareCluster(/*processes=*/2, /*nodes=*/4);

  // Valid magic, but no handler registered anywhere for the tag: the
  // remote dispatch refuses and the caller fails after its attempts —
  // no crash, no hang.
  net::Transport::RpcResult refused =
      cluster[0]->Call(0, 1, core::msg::Encode(core::msg::AppAck{}));
  EXPECT_FALSE(refused.ok);

  // Garbage bytes (bad message magic) are refused the same way.
  net::Transport::RpcResult garbage =
      cluster[0]->Call(0, 1, {0xde, 0xad, 0xbe, 0xef, 0x00});
  EXPECT_FALSE(garbage.ok);

  for (auto& t : cluster) t->Stop();
  EXPECT_GE(cluster[0]->stats().rpc_failures, 2u);
}

TEST(TcpTransportTest, EngagementNoncesAreNonzeroAndProcessBranded) {
  net::TcpTransport::Options options;
  options.node_count = 4;
  options.process_count = 2;
  options.process_index = 1;
  net::TcpTransport transport(options);  // never started: nonces only
  EXPECT_TRUE(transport.remote_dispatch());
  EXPECT_FALSE(transport.SetVirtualTime(100));  // wall-clock transport
  uint64_t a = transport.NewEngagementNonce();
  uint64_t b = transport.NewEngagementNonce();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 48, 2u);  // process_index + 1 brands the high bits
}

// ---------------------------------------------------------------------
// Full protocol stack over sockets: one replicated world per emulated
// process, resident ProtocolService + apps, driver in "process" 0 —
// exactly what `sep2p_cli cluster` does, in-process for the harness.

struct LivePeer {
  std::unique_ptr<sim::Network> world;
  std::unique_ptr<net::TcpTransport> transport;
  core::ProtocolContext ctx;  // referenced by `service`: must not move
  std::unique_ptr<core::ProtocolService> service;
  std::vector<node::PdmsNode> pdms;
  std::unique_ptr<node::AppRuntime> runtime;
  std::unique_ptr<apps::ConceptIndex> index;
  std::unique_ptr<apps::DiffusionApp> diffusion;
  std::unique_ptr<apps::QueryApp> query;
};

std::vector<node::PdmsNode> ReplicatedPdms(size_t n) {
  // Pure function of n, like sim::Network::Build is of the seed: every
  // peer derives identical PDMS contents without any synchronization.
  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < n; ++i) pdms.emplace_back(i);
  for (uint32_t i = 0; i < pdms.size(); ++i) {
    if (i % 3 == 0) pdms[i].AddConcept("commuter");
    pdms[i].SetAttribute("km_per_day", static_cast<double>(i % 40));
  }
  return pdms;
}

std::unique_ptr<LivePeer> MakeLivePeer(const sim::Parameters& params,
                                       uint32_t processes,
                                       uint32_t process_index) {
  auto peer = std::make_unique<LivePeer>();
  auto world = sim::Network::Build(params);
  if (!world.ok()) return nullptr;
  peer->world = std::move(world.value());
  const uint32_t node_count =
      static_cast<uint32_t>(peer->world->directory().size());

  net::TcpTransport::Options topt;
  topt.node_count = node_count;
  topt.process_count = processes;
  topt.process_index = process_index;
  topt.listen_port = 0;
  topt.seed = params.seed ^ (0x7c1ULL + process_index);
  topt.retry = FastRetry();
  peer->transport = std::make_unique<net::TcpTransport>(topt);

  peer->ctx = peer->world->context();
  core::ProtocolService::Options popt;
  popt.rng_seed = params.seed ^ (0x5e21ULL + process_index * 0x9e37ULL);
  peer->service = std::make_unique<core::ProtocolService>(
      peer->ctx, *peer->transport, popt);

  peer->pdms = ReplicatedPdms(node_count);
  peer->runtime = std::make_unique<node::AppRuntime>(peer->transport.get());
  apps::EnsureProxyHandlers(*peer->runtime);
  peer->index = std::make_unique<apps::ConceptIndex>(peer->world.get(),
                                                     peer->runtime.get());
  peer->diffusion = std::make_unique<apps::DiffusionApp>(
      peer->world.get(), &peer->pdms, peer->index.get(),
      peer->runtime.get());
  peer->query = std::make_unique<apps::QueryApp>(
      peer->world.get(), &peer->pdms, peer->index.get(),
      peer->runtime.get());

  if (!peer->transport->Start().ok()) return nullptr;
  return peer;
}

TEST(TcpTransportTest, CrossProcessProtocolStack) {
  sim::Parameters params;
  params.n = 400;
  params.cache_size = 128;
  params.actor_count = 4;
  params.seed = 42;
  params.threads = 1;

  const uint32_t kProcesses = 2;
  std::vector<std::unique_ptr<LivePeer>> peers;
  for (uint32_t p = 0; p < kProcesses; ++p) {
    peers.push_back(MakeLivePeer(params, kProcesses, p));
    ASSERT_NE(peers.back(), nullptr) << "peer " << p;
  }
  for (uint32_t p = 0; p < kProcesses; ++p) {
    for (uint32_t q = 0; q < kProcesses; ++q) {
      if (p == q) continue;
      peers[p]->transport->SetPeer(q, "127.0.0.1",
                                   peers[q]->transport->listen_port());
    }
  }
  for (auto& peer : peers) {
    ASSERT_TRUE(peer->transport->WaitForPeers(20000).ok());
  }

  LivePeer& driver = *peers[0];
  util::Rng rng(params.seed ^ 0xc105ULL);

  // Profiles to the metadata indexers (half of which live in the other
  // "process"), through anonymizing proxies.
  ASSERT_TRUE(driver.diffusion->PublishAllProfiles(rng).ok());

  // Attested join (§3.6): cache validators answer from the resident
  // ProtocolService in whichever process hosts them.
  node::JoinProtocol join(driver.ctx, driver.transport.get());
  auto joined = join.Join(1, rng);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_GT(joined->cache.size(), 0u);

  // Secure actor selection (§3.4–3.5): CSAR commit-reveal plus the
  // imposed-location walk, SLs spread over both transports; the VAL it
  // produces must verify exactly as a data source would check it.
  core::ProtocolContext sel_ctx = driver.ctx;
  sel_ctx.actor_count = params.actor_count;
  int restarts = 0;
  auto selected =
      driver.runtime->RunSelection(sel_ctx, 2, rng, 8, &restarts);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->actor_indices.size(),
            static_cast<size_t>(params.actor_count));
  EXPECT_TRUE(core::VerifyActorList(driver.ctx, selected->val).ok());

  // Distributed query (§5): the driver deploys the round to the chosen
  // aggregators by QueryDeploy, sources contribute via proxies, and the
  // driver learns ONLY flushed aggregates (QueryFlush), never the
  // per-value stream a sim run records.
  apps::QuerySpec spec;
  spec.profile_expression = "commuter";
  spec.attribute = "km_per_day";
  spec.aggregate = apps::Aggregate::kAvg;
  auto result = driver.query->Execute(3, spec, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->answer_delivered);
  EXPECT_GT(result->contributors, 0u);
  EXPECT_EQ(result->lost_contributions, 0);
  EXPECT_GE(result->value, 0.0);
  EXPECT_LT(result->value, 40.0);  // km_per_day ranges over [0, 40)
  EXPECT_TRUE(result->values_seen_by_da.empty());  // privacy: aggregates only

  for (auto& peer : peers) peer->transport->Stop();
  // Genuine cross-socket traffic happened: the non-driver peer
  // dispatched requests it received over TCP.
  EXPECT_GT(peers[1]->transport->stats().messages_delivered, 0u);
  EXPECT_EQ(peers[0]->transport->stats().rpc_failures, 0u);
}

}  // namespace
}  // namespace sep2p
