// Cluster-scope observability: HLC stamp algebra, causally-consistent
// shard merging (obs/cluster.h), and the live status plane.
//
// The merge tests pin the determinism handle a live cluster cannot get
// from wall clocks alone: the SAME protocol schedule — expressed as
// synthetic shards whose stamps are issued by real obs::Hlc instances —
// must merge to the SAME event order and CausalDigest under any shard
// ingestion order and any per-process wall-clock skew. Mis-stamped
// shards must be rejected loudly (the negative twin of the checker's
// TamperedTraceTest): a merge over broken stamps would produce a
// plausible-looking trace whose checker verdict means nothing.
//
// The TcpTransportObs suite runs real transports over loopback — its
// name matters: CI's TSan job selects it via the `|TcpTransport`
// filter.

#include "obs/cluster.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/messages.h"
#include "net/tcp_transport.h"
#include "obs/checker.h"
#include "obs/export.h"
#include "obs/hlc.h"
#include "obs/status.h"
#include "obs/trace.h"

namespace sep2p {
namespace {

using obs::ClockDomain;
using obs::Event;
using obs::EventKind;
using obs::Hlc;
using obs::Trace;
using obs::TraceRecorder;

// ------------------------------------------------------------ HLC

TEST(HlcTest, TickIsStrictlyIncreasingEvenWhenWallStalls) {
  Hlc hlc;
  const uint64_t a = hlc.Tick(1000);
  const uint64_t b = hlc.Tick(1000);  // same millisecond: logical tick
  const uint64_t c = hlc.Tick(999);   // wall clock stepped BACK
  const uint64_t d = hlc.Tick(2000);  // wall clock ahead again
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(Hlc::WallMs(a), 1000u);
  EXPECT_EQ(Hlc::Logical(b), Hlc::Logical(a) + 1);
  EXPECT_EQ(Hlc::WallMs(d), 2000u);
  EXPECT_EQ(Hlc::Logical(d), 0u);
}

TEST(HlcTest, ObserveOrdersLocalStampsAfterRemoteOnes) {
  Hlc sender;
  Hlc receiver;
  // The receiver's wall clock lags the sender's by a full second.
  const uint64_t remote = sender.Tick(5000);
  receiver.Observe(remote);
  const uint64_t local = receiver.Tick(4000);
  EXPECT_GT(local, remote);
  // Observing an OLDER stamp must not rewind.
  receiver.Observe(remote);
  EXPECT_EQ(receiver.last(), local);
}

TEST(HlcTest, PackRoundTrips) {
  const uint64_t stamp = Hlc::Pack(123456789, 42);
  EXPECT_EQ(Hlc::WallMs(stamp), 123456789u);
  EXPECT_EQ(Hlc::Logical(stamp), 42u);
}

// --------------------------------------------- synthetic shard merge

// Span and rpc ids branded by the driver process (index 0), exactly as
// TcpTransport brands them: high bits = process_index + 1.
constexpr uint64_t kSpan = (1ull << 48) + 1;
constexpr uint64_t kRpc1 = (1ull << 48) | 1;
constexpr uint64_t kRpc2 = (1ull << 48) | 2;

// Builds the 3-process shard set of one causally-chained schedule: the
// driver (process 0, node 0) opens a span, calls node 1 (served by
// process 1), then — after the reply lands — calls node 2 (process 2),
// closes the span. Stamps are issued by real Hlc instances with
// `skew_ms[p]` added to process p's wall clock, so every happens-before
// edge crosses processes through Observe() just like the wire does.
std::vector<Trace> MakeShards(const std::array<int64_t, 3>& skew_ms) {
  const uint64_t kBaseMs = 1'000'000;
  std::array<Hlc, 3> hlc;
  std::array<uint64_t, 3> wall;
  for (size_t p = 0; p < 3; ++p) {
    wall[p] = static_cast<uint64_t>(static_cast<int64_t>(kBaseMs) + skew_ms[p]);
  }
  std::vector<Trace> shards(3);
  for (uint32_t p = 0; p < 3; ++p) {
    shards[p].meta.version = 1;
    shards[p].meta.node_count = 3;
    shards[p].meta.max_attempts = 4;
    shards[p].meta.clock = ClockDomain::kWall;
    shards[p].meta.process = p;
    shards[p].meta.process_count = 3;
  }
  auto emit = [&](uint32_t p, EventKind kind, uint32_t node, uint32_t peer,
                  uint64_t span, uint64_t rpc, uint64_t value,
                  std::string detail) {
    Event e;
    e.t_us = wall[p] * 1000;
    e.kind = kind;
    e.node = node;
    e.peer = peer;
    e.span = span;
    if (kind == EventKind::kSpanBegin) e.parent = 0;
    e.rpc = rpc;
    e.value = value;
    e.hlc = hlc[p].Tick(wall[p]++);
    e.detail = std::move(detail);
    shards[p].events.push_back(std::move(e));
    return shards[p].events.back().hlc;
  };

  emit(0, EventKind::kSpanBegin, 0, obs::kNoNode, kSpan, 0, 0, "query");
  // RPC 1: node 0 -> node 1, served by process 1.
  const uint64_t s1 =
      emit(0, EventKind::kSend, 0, 1, kSpan, kRpc1, 64, "");
  hlc[1].Observe(s1);
  emit(1, EventKind::kDeliver, 1, 0, kSpan, kRpc1, 64, "");
  const uint64_t r1 =
      emit(1, EventKind::kSend, 1, 0, kSpan, kRpc1, 32, "");
  hlc[0].Observe(r1);
  emit(0, EventKind::kDeliver, 0, 1, kSpan, kRpc1, 32, "");
  // RPC 2: node 0 -> node 2, served by process 2 (after RPC 1's reply,
  // so the whole schedule is one causal chain).
  const uint64_t s2 =
      emit(0, EventKind::kSend, 0, 2, kSpan, kRpc2, 64, "");
  hlc[2].Observe(s2);
  emit(2, EventKind::kDeliver, 2, 0, kSpan, kRpc2, 64, "");
  const uint64_t r2 =
      emit(2, EventKind::kSend, 2, 0, kSpan, kRpc2, 32, "");
  hlc[0].Observe(r2);
  emit(0, EventKind::kDeliver, 0, 2, kSpan, kRpc2, 32, "");
  emit(0, EventKind::kSpanEnd, 0, obs::kNoNode, kSpan, 0, 0, "query");
  // Per-shard residual marks, as FinalizeTrace writes them (the client
  // saw 2 sends / 2 delivers; servers delivered more than they sent).
  for (uint32_t p = 0; p < 3; ++p) {
    emit(p, EventKind::kMark, obs::kNoNode, obs::kNoNode, 0, 0, 0,
         "shutdown");
  }
  return shards;
}

TEST(ClusterMergeTest, MergedTracePassesEveryCheckerInvariant) {
  auto merged = obs::MergeCluster(MakeShards({0, 0, 0}));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const obs::CheckerReport report = obs::CheckTrace(merged.value());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
  EXPECT_EQ(report.sends, 4u);
  EXPECT_EQ(report.delivers, 4u);
  EXPECT_EQ(report.spans, 1u);
  // 10 protocol events survive; the 3 per-shard shutdown marks are
  // replaced by ONE cluster-wide mark with a zero residual.
  ASSERT_EQ(merged->events.size(), 11u);
  const Event& mark = merged->events.back();
  EXPECT_EQ(mark.kind, EventKind::kMark);
  EXPECT_EQ(mark.detail, "shutdown");
  EXPECT_EQ(mark.value, 0u);
  // Causal order across processes: the server-side deliver of RPC 1
  // lands between the client's send and the client's deliver.
  auto index_of = [&](EventKind kind, uint32_t node, uint64_t rpc) {
    for (size_t i = 0; i < merged->events.size(); ++i) {
      const Event& e = merged->events[i];
      if (e.kind == kind && e.node == node && e.rpc == rpc) return i;
    }
    return static_cast<size_t>(-1);
  };
  const size_t client_send = index_of(EventKind::kSend, 0, kRpc1);
  const size_t server_deliver = index_of(EventKind::kDeliver, 1, kRpc1);
  const size_t client_deliver = index_of(EventKind::kDeliver, 0, kRpc1);
  ASSERT_NE(client_send, static_cast<size_t>(-1));
  EXPECT_LT(client_send, server_deliver);
  EXPECT_LT(server_deliver, client_deliver);
}

TEST(ClusterMergeTest, IngestionOrderNeverChangesTheMerge) {
  const auto digest0 = [] {
    auto m = obs::MergeCluster(MakeShards({0, 0, 0}));
    EXPECT_TRUE(m.ok());
    return obs::CausalDigest(m.value());
  }();
  const std::array<std::array<size_t, 3>, 3> orders = {
      {{2, 1, 0}, {1, 2, 0}, {0, 2, 1}}};
  auto reference = obs::MergeCluster(MakeShards({0, 0, 0}));
  ASSERT_TRUE(reference.ok());
  for (const auto& order : orders) {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    std::vector<Trace> shuffled;
    for (size_t i : order) shuffled.push_back(std::move(shards[i]));
    auto merged = obs::MergeCluster(std::move(shuffled));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged->events, reference->events);
    EXPECT_EQ(obs::CausalDigest(merged.value()), digest0);
  }
}

TEST(ClusterMergeTest, WallClockSkewNeverChangesTheDigest) {
  auto reference = obs::MergeCluster(MakeShards({0, 0, 0}));
  ASSERT_TRUE(reference.ok());
  const uint64_t digest = obs::CausalDigest(reference.value());
  // Seconds of skew in both directions — far beyond NTP drift. The
  // stamps (and t_us) all move, but the merged ORDER is pinned by the
  // happens-before chain, and the digest ignores timestamps.
  const std::array<std::array<int64_t, 3>, 3> skews = {
      {{0, 5000, -3000}, {-2000, 0, 7000}, {10000, 10000, 0}}};
  for (const auto& skew : skews) {
    auto merged = obs::MergeCluster(MakeShards(skew));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ASSERT_EQ(merged->events.size(), reference->events.size());
    for (size_t i = 0; i < merged->events.size(); ++i) {
      EXPECT_EQ(merged->events[i].kind, reference->events[i].kind) << i;
      EXPECT_EQ(merged->events[i].node, reference->events[i].node) << i;
      EXPECT_EQ(merged->events[i].rpc, reference->events[i].rpc) << i;
    }
    EXPECT_EQ(obs::CausalDigest(merged.value()), digest);
  }
}

TEST(ClusterMergeTest, InFlightResidualIsResynthesizedClusterWide) {
  std::vector<Trace> shards = MakeShards({0, 0, 0});
  // The reply of RPC 2 never lands: drop the client's final deliver
  // (second-to-last protocol event of shard 0, before its mark).
  auto& events = shards[0].events;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kDeliver && events[i].rpc == kRpc2) {
      events.erase(events.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  auto merged = obs::MergeCluster(std::move(shards));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->events.back().value, 1u);  // one message in flight
  const obs::CheckerReport report = obs::CheckTrace(merged.value());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
}

// The negative twin of TamperedTraceTest: every way a shard can be
// mis-stamped is refused with a message naming the offending process.
TEST(ClusterMergeTest, MisStampedShardsAreRejectedLoudly) {
  auto expect_rejected = [](std::vector<Trace> shards,
                            const std::string& needle) {
    auto merged = obs::MergeCluster(std::move(shards));
    ASSERT_FALSE(merged.ok()) << "expected rejection: " << needle;
    EXPECT_NE(merged.status().message().find(needle), std::string::npos)
        << merged.status().ToString();
  };
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[1].events[0].hlc = 0;
    expect_rejected(std::move(shards), "missing its HLC stamp");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    std::swap(shards[0].events[1].hlc, shards[0].events[2].hlc);
    expect_rejected(std::move(shards), "not strictly increasing");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[2].meta.clock = ClockDomain::kVirtual;
    expect_rejected(std::move(shards), "virtual clock");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[1].meta.process = 0;
    expect_rejected(std::move(shards), "duplicate shard for process 0");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[2].meta.node_count = 99;
    expect_rejected(std::move(shards), "disagrees with sibling shards");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[1].meta.process = 7;
    expect_rejected(std::move(shards), "process id out of range");
  }
  {
    std::vector<Trace> shards = MakeShards({0, 0, 0});
    shards[1].meta.process_count = 0;
    expect_rejected(std::move(shards), "missing process_count");
  }
  expect_rejected({}, "no shards");
}

// -------------------------------------- sim export stays byte-stable

TEST(ClusterMergeTest, SimTracesCarryNoClusterFields) {
  // A recorder that never saw EnableHlc / cluster meta must export the
  // EXACT pre-observability JSONL: no "clock", no "process", no "h"
  // keys — the byte-identity contract of sim traces.
  TraceRecorder rec;
  uint64_t clock = 0;
  rec.BindClock(&clock);
  rec.meta().node_count = 4;
  rec.meta().max_attempts = 3;
  const uint64_t span = rec.OpenSpan(1, "phase");
  Event e;
  e.t_us = 5;
  e.kind = EventKind::kSend;
  e.node = 1;
  e.peer = 2;
  e.rpc = 7;
  rec.Record(e);
  clock = 9;
  rec.CloseSpan(span);
  const std::string jsonl = obs::ToJsonl(rec.trace());
  EXPECT_EQ(jsonl.substr(0, jsonl.find('\n')),
            "{\"sep2p_trace\":1,\"node_count\":4,\"max_attempts\":3}");
  EXPECT_EQ(jsonl.find("\"clock\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"process\""), std::string::npos);
  EXPECT_EQ(jsonl.find("\"h\":"), std::string::npos);
  // And the round trip preserves the absence.
  auto loaded = obs::FromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(obs::ToJsonl(loaded.value()), jsonl);
}

TEST(ClusterMergeTest, ClusterShardJsonlRoundTripsWithClusterFields) {
  std::vector<Trace> shards = MakeShards({0, 0, 0});
  const std::string jsonl = obs::ToJsonl(shards[1]);
  EXPECT_NE(jsonl.find("\"clock\":\"wall\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"process\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"h\":"), std::string::npos);
  auto loaded = obs::FromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, shards[1].meta);
  EXPECT_EQ(loaded->events, shards[1].events);
  EXPECT_EQ(obs::ToJsonl(loaded.value()), jsonl);
}

// ------------------------------------------- live transports (TSan'd)

net::RetryPolicy FastRetry() {
  net::RetryPolicy retry;
  retry.timeout_us = 2'000'000;
  retry.max_attempts = 3;
  retry.backoff_base_us = 50'000;
  retry.jitter_fraction = 0.0;
  return retry;
}

TEST(TcpTransportObsTest, LiveShardsMergeCheckAndCrossProcessSpans) {
  constexpr uint32_t kProcesses = 2;
  constexpr uint32_t kNodes = 4;
  std::vector<std::unique_ptr<net::TcpTransport>> cluster;
  std::vector<std::unique_ptr<TraceRecorder>> recorders;
  for (uint32_t p = 0; p < kProcesses; ++p) {
    net::TcpTransport::Options options;
    options.node_count = kNodes;
    options.process_count = kProcesses;
    options.process_index = p;
    options.listen_port = 0;
    options.seed = 2000 + p;
    options.retry = FastRetry();
    cluster.push_back(std::make_unique<net::TcpTransport>(options));
    recorders.push_back(std::make_unique<TraceRecorder>());
  }
  for (uint32_t p = 0; p < kProcesses; ++p) {
    ASSERT_TRUE(cluster[p]->Start().ok());
    cluster[p]->set_trace(recorders[p].get());
  }
  for (uint32_t p = 0; p < kProcesses; ++p) {
    for (uint32_t q = 0; q < kProcesses; ++q) {
      if (p != q) {
        cluster[p]->SetPeer(q, "127.0.0.1", cluster[q]->listen_port());
      }
    }
  }
  for (auto& t : cluster) {
    t->Register(core::msg::kTagAppAck,
                [](uint32_t, const std::vector<uint8_t>& request)
                    -> std::optional<std::vector<uint8_t>> {
                  return request;
                });
  }
  const std::vector<uint8_t> request = core::msg::Encode(core::msg::AppAck{});
  uint64_t client_span = 0;
  {
    obs::Span span(recorders[0].get(), 0, "live-query");
    client_span = recorders[0]->CurrentSpan();
    // Node 1 lives in process 1 (remote), node 2 in process 0 (local).
    EXPECT_TRUE(cluster[0]->Call(0, 1, request).ok);
    EXPECT_TRUE(cluster[0]->Call(0, 2, request).ok);
  }

  // The listen port doubles as a status plane while the daemon runs.
  auto scraped = net::ScrapeStatus("127.0.0.1", cluster[1]->listen_port(),
                                   /*timeout_ms=*/5000);
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  EXPECT_NE(scraped->find("sep2p_health{verdict=\"ok\"} 1"),
            std::string::npos);
  EXPECT_NE(scraped->find("sep2p_process_index 1"), std::string::npos);
  EXPECT_NE(cluster[0]->BuildStatusText().find("sep2p_health"),
            std::string::npos);

  for (auto& t : cluster) t->Stop();
  for (auto& t : cluster) t->FinalizeTrace();

  // The span is branded with process 0's prefix; every event of both
  // shards carries a nonzero HLC stamp.
  EXPECT_EQ(client_span >> 48, 1u);
  for (uint32_t p = 0; p < kProcesses; ++p) {
    for (const Event& e : recorders[p]->trace().events) {
      EXPECT_NE(e.hlc, 0u) << "process " << p;
    }
  }
  // The remote server attributed its deliver to the CLIENT's span.
  bool remote_deliver_in_client_span = false;
  for (const Event& e : recorders[1]->trace().events) {
    if (e.kind == EventKind::kDeliver && e.span == client_span) {
      remote_deliver_in_client_span = true;
    }
  }
  EXPECT_TRUE(remote_deliver_in_client_span);

  std::vector<Trace> shards;
  for (auto& rec : recorders) shards.push_back(rec->trace());
  auto merged = obs::MergeCluster(std::move(shards));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const obs::CheckerReport report = obs::CheckTrace(merged.value());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "?"
                                   : report.violations.front());
  EXPECT_EQ(report.sends, report.delivers);
  // The remote RPC contributes request + response legs; the local one
  // short-circuits dispatch, so only its request leg is metered.
  EXPECT_GE(report.sends, 3u);
}

TEST(TcpTransportObsTest, StatusRendererEmitsHealthVerdicts) {
  obs::ProcessStatus status;
  status.process = 2;
  status.process_count = 5;
  status.node_count = 100;
  status.listen_port = 19000;
  const std::string ok_text = obs::RenderProcessStatus(status);
  EXPECT_NE(ok_text.find("sep2p_health{verdict=\"ok\"} 1"),
            std::string::npos);
  status.reconnects = 1;
  const std::string degraded = obs::RenderProcessStatus(status);
  EXPECT_NE(degraded.find("sep2p_health{verdict=\"degraded\"} 1"),
            std::string::npos);
  EXPECT_EQ(obs::HealthVerdict(0, 0), "ok");
  EXPECT_EQ(obs::HealthVerdict(1, 0), "degraded");
}

}  // namespace
}  // namespace sep2p
