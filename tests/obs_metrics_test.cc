// MetricsRegistry determinism: fixed histogram buckets, merge-order
// independence, phase attribution that reconciles exactly with totals,
// opt-in per-node tables, and stable Prometheus/JSON exposition.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/rng.h"

namespace sep2p {
namespace {

using obs::Counter;
using obs::Hist;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::NodeCounter;

TEST(HistogramTest, BucketBoundsAreTheDocumented125Series) {
  const auto& bounds = Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), Histogram::kBoundCount);
  EXPECT_EQ(bounds.front(), 10u);
  EXPECT_EQ(bounds.back(), 1'000'000'000u);
  // Strictly increasing, and each decade is {1, 2, 5} * 10^d.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  for (uint64_t bound : bounds) {
    uint64_t mantissa = bound;
    while (mantissa % 10 == 0) mantissa /= 10;
    EXPECT_TRUE(mantissa == 1 || mantissa == 2 || mantissa == 5)
        << bound;
  }
}

TEST(HistogramTest, ObserveTracksCountSumMinMaxAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);

  h.Observe(7);     // <= 10 -> first bucket
  h.Observe(10);    // boundary is inclusive -> first bucket
  h.Observe(11);    // -> 20 bucket
  h.Observe(2'000'000'000);  // beyond the last bound -> overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 7u + 10u + 11u + 2'000'000'000u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 2'000'000'000u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[Histogram::kBucketCount - 1], 1u);
}

TEST(HistogramTest, QuantileIsNearestRankBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Observe(15);   // -> 20 bucket
  for (int i = 0; i < 49; ++i) h.Observe(300);  // -> 500 bucket
  h.Observe(5'000'000'000);                     // overflow
  EXPECT_EQ(h.Quantile(0.0), 20u);
  EXPECT_EQ(h.Quantile(0.5), 20u);
  EXPECT_EQ(h.Quantile(0.9), 500u);
  // Overflow bucket resolves to the recorded max.
  EXPECT_EQ(h.Quantile(1.0), 5'000'000'000u);
  // Out-of-range q clamps.
  EXPECT_EQ(h.Quantile(-3), 20u);
  EXPECT_EQ(h.Quantile(7), 5'000'000'000u);
}

TEST(HistogramTest, MergeIsOrderIndependent) {
  // Three shards with very different value ranges.
  std::vector<Histogram> shards(3);
  util::Rng rng(42);
  for (int i = 0; i < 200; ++i) shards[0].Observe(rng.NextUint64(100));
  for (int i = 0; i < 50; ++i) {
    shards[1].Observe(1000 + rng.NextUint64(100'000));
  }
  for (int i = 0; i < 5; ++i) {
    shards[2].Observe(900'000'000 + rng.NextUint64(900'000'000));
  }

  std::vector<size_t> order = {0, 1, 2};
  Histogram reference;
  for (size_t i : order) reference.Merge(shards[i]);
  while (std::next_permutation(order.begin(), order.end())) {
    Histogram merged;
    for (size_t i : order) merged.Merge(shards[i]);
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_EQ(merged.sum(), reference.sum());
    EXPECT_EQ(merged.min(), reference.min());
    EXPECT_EQ(merged.max(), reference.max());
    EXPECT_EQ(merged.buckets(), reference.buckets());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(merged.Quantile(q), reference.Quantile(q)) << q;
    }
  }
}

TEST(MetricsRegistryTest, CountersAndGaugesAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.Inc(Counter::kMessagesSent);
  m.Inc(Counter::kMessagesSent, 4);
  m.Inc(Counter::kBytesSent, 128);
  m.SetGauge("n", 2000);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter(Counter::kMessagesSent), 5u);
  EXPECT_EQ(m.counter(Counter::kBytesSent), 128u);
  EXPECT_EQ(m.counter(Counter::kTimeouts), 0u);
}

TEST(MetricsRegistryTest, PhaseAttributionChargesInnermostPhaseOnly) {
  MetricsRegistry m;
  m.Inc(Counter::kMessagesSent);  // outside any phase: totals only
  m.PushPhase("selection");
  m.Inc(Counter::kMessagesSent, 2);
  m.PushPhase("sl-engage");
  m.Inc(Counter::kMessagesSent, 5);
  m.Inc(Counter::kCryptoSign, 3);
  m.PopPhase();
  m.Inc(Counter::kMessagesSent);  // back in "selection"
  m.PopPhase();

  EXPECT_EQ(m.counter(Counter::kMessagesSent), 9u);
  EXPECT_EQ(m.phase_counter("selection", Counter::kMessagesSent), 3u);
  EXPECT_EQ(m.phase_counter("sl-engage", Counter::kMessagesSent), 5u);
  EXPECT_EQ(m.phase_counter("sl-engage", Counter::kCryptoSign), 3u);
  EXPECT_EQ(m.phase_counter("absent", Counter::kMessagesSent), 0u);
  // Per-phase rows sum exactly to the total minus the unphased share.
  uint64_t phased = 0;
  for (const std::string& name : m.PhaseNames()) {
    phased += m.phase_counter(name, Counter::kMessagesSent);
  }
  EXPECT_EQ(phased + 1, m.counter(Counter::kMessagesSent));
}

TEST(MetricsRegistryTest, SpanGuardDoublesAsPhase) {
  MetricsRegistry m;
  {
    obs::Span span(nullptr, &m, /*node=*/3, "vrand");
    m.Inc(Counter::kCryptoSign, 7);
  }
  m.Inc(Counter::kCryptoSign);  // after the guard: totals only
  EXPECT_EQ(m.phase_counter("vrand", Counter::kCryptoSign), 7u);
  EXPECT_EQ(m.counter(Counter::kCryptoSign), 8u);
}

TEST(MetricsRegistryTest, PerNodeCountersAreOptIn) {
  MetricsRegistry m;
  m.IncNode(2, NodeCounter::kMessages);  // before enabling: dropped
  EXPECT_EQ(m.node_counter(2, NodeCounter::kMessages), 0u);
  m.EnablePerNode(4);
  m.IncNode(2, NodeCounter::kMessages, 3);
  m.IncNode(3, NodeCounter::kCrypto, 9);
  m.IncNode(99, NodeCounter::kMessages);  // out of range: dropped
  EXPECT_EQ(m.node_counter(2, NodeCounter::kMessages), 3u);
  EXPECT_EQ(m.node_counter(3, NodeCounter::kCrypto), 9u);
  EXPECT_EQ(m.node_counter(99, NodeCounter::kMessages), 0u);
}

MetricsRegistry MakeShard(uint64_t seed, const char* phase) {
  MetricsRegistry m;
  util::Rng rng(seed);
  m.PushPhase(phase);
  for (int i = 0; i < 100; ++i) {
    m.Inc(Counter::kMessagesSent, rng.NextUint64(5));
    m.Observe(Hist::kRpcLatencyUs, rng.NextUint64(1'000'000));
  }
  m.PopPhase();
  m.EnablePerNode(8);
  m.IncNode(static_cast<uint32_t>(seed % 8), NodeCounter::kMessages,
            seed);
  return m;
}

TEST(MetricsRegistryTest, MergeIsOrderIndependentAcrossShards) {
  // Shards that saw different phases, nodes and latency ranges.
  std::vector<MetricsRegistry> shards;
  shards.push_back(MakeShard(1, "selection"));
  shards.push_back(MakeShard(2, "sl-engage"));
  shards.push_back(MakeShard(3, "selection"));
  shards.push_back(MakeShard(4, "sensing-round"));

  std::vector<size_t> order(shards.size());
  std::iota(order.begin(), order.end(), 0);
  MetricsRegistry reference;
  for (size_t i : order) reference.Merge(shards[i]);
  const std::string reference_prom = reference.ToPrometheusText();
  const std::string reference_json = reference.ToJson();

  while (std::next_permutation(order.begin(), order.end())) {
    MetricsRegistry merged;
    for (size_t i : order) merged.Merge(shards[i]);
    // Byte-identical exposition covers counters, phases, histogram
    // buckets + percentiles, gauges and the per-node table at once.
    EXPECT_EQ(merged.ToPrometheusText(), reference_prom);
    EXPECT_EQ(merged.ToJson(), reference_json);
  }
}

TEST(MetricsRegistryTest, PrometheusAndJsonExposition) {
  MetricsRegistry m;
  m.SetGauge("n", 800);
  m.PushPhase("selection");
  m.Inc(Counter::kMessagesSent, 12);
  m.PopPhase();
  m.Observe(Hist::kRpcLatencyUs, 150);
  m.Observe(Hist::kRpcLatencyUs, 70'000);

  const std::string prom = m.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE sep2p_messages_sent counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sep2p_messages_sent 12"), std::string::npos);
  EXPECT_NE(prom.find("{phase=\"selection\"}"), std::string::npos);
  EXPECT_NE(prom.find("sep2p_rpc_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sep2p_n 800"), std::string::npos);

  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"messages_sent\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"selection\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc_latency_us\""), std::string::npos);
  // Deterministic output: rendering twice is byte-identical.
  EXPECT_EQ(json, m.ToJson());
  EXPECT_EQ(prom, m.ToPrometheusText());
}

}  // namespace
}  // namespace sep2p
