#include "node/churn.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sep2p::node {
namespace {

TEST(ChurnTest, AnalyticCostScalesWithCacheSize) {
  auto small = ChurnSimulator::Analytic(10000, 4, 128, 24.0);
  auto large = ChurnSimulator::Analytic(10000, 4, 4096, 24.0);
  EXPECT_GT(large.crypto_ops_per_node_per_min,
            small.crypto_ops_per_node_per_min * 8);
}

TEST(ChurnTest, AnalyticCostInverselyProportionalToMtbf) {
  auto fast = ChurnSimulator::Analytic(10000, 4, 512, 1.0);
  auto slow = ChurnSimulator::Analytic(10000, 4, 512, 24.0);
  EXPECT_NEAR(fast.crypto_ops_per_node_per_min /
                  slow.crypto_ops_per_node_per_min,
              24.0, 0.01);
}

TEST(ChurnTest, PaperHeadlineNumbersHold) {
  // Paper §4.3: cache ~512 at MTBF = 1 day costs less than 1 signature
  // per node per minute; a 32K cache is excessively costly even at
  // MTBF = 5 days.
  auto reference = ChurnSimulator::Analytic(100000, 4, 512, 24.0);
  EXPECT_LT(reference.crypto_ops_per_node_per_min, 1.0);

  auto full_mesh = ChurnSimulator::Analytic(100000, 4, 32768, 120.0);
  EXPECT_GT(full_mesh.crypto_ops_per_node_per_min, 1.0);
}

TEST(ChurnTest, SimulatorMatchesAnalyticModel) {
  auto dir = test::MakeDirectory(2000);
  ChurnSimulator sim(dir.get(), /*k=*/4, /*cache_size=*/100);
  util::Rng rng(13);
  MaintenanceReport simulated = sim.Run(/*mtbf_hours=*/2.0,
                                        /*sim_hours=*/20.0, rng);
  MaintenanceReport analytic =
      ChurnSimulator::Analytic(2000, 4, 100, 2.0);
  ASSERT_GT(simulated.churn_cycles, 1000u);
  EXPECT_NEAR(simulated.crypto_ops_per_node_per_min /
                  analytic.crypto_ops_per_node_per_min,
              1.0, 0.25);
  EXPECT_NEAR(simulated.messages_per_node_per_min /
                  analytic.messages_per_node_per_min,
              1.0, 0.25);
}

TEST(ChurnTest, SimulatorRestoresAllNodes) {
  auto dir = test::MakeDirectory(500);
  ChurnSimulator sim(dir.get(), 4, 50);
  util::Rng rng(7);
  sim.Run(1.0, 5.0, rng);
  EXPECT_EQ(dir->alive_count(), 500u);
}

TEST(ChurnTest, NoChurnWithinShortWindow) {
  auto dir = test::MakeDirectory(100);
  ChurnSimulator sim(dir.get(), 4, 20);
  util::Rng rng(3);
  // MTBF of 10000 hours over 0.01 hours: expected cycles ~ 1e-4.
  MaintenanceReport report = sim.Run(10000.0, 0.01, rng);
  EXPECT_EQ(report.churn_cycles, 0u);
  EXPECT_EQ(report.crypto_ops_total, 0.0);
}

TEST(ChurnTest, MessagesTrackCacheSizeToo) {
  auto a = ChurnSimulator::Analytic(10000, 4, 64, 24.0);
  auto b = ChurnSimulator::Analytic(10000, 4, 1024, 24.0);
  EXPECT_GT(b.messages_per_node_per_min, a.messages_per_node_per_min * 4);
}

}  // namespace
}  // namespace sep2p::node
