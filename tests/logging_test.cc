#include "util/logging.h"

#include <gtest/gtest.h>

namespace sep2p::util {
namespace {

TEST(LoggingTest, SetLogLevelReturnsPrevious) {
  LogLevel original = GetLogLevel();
  LogLevel old = SetLogLevel(LogLevel::kError);
  EXPECT_EQ(old, original);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, MessagesBelowThresholdAreCheapNoops) {
  LogLevel original = SetLogLevel(LogLevel::kError);
  // Must not crash or emit; mainly exercises the stream machinery.
  SEP2P_LOG(Debug) << "invisible " << 42;
  SEP2P_LOG(Info) << "also invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedStatementsSkipOperandEvaluation) {
  LogLevel original = SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "formatted";
  };
  // Below threshold: the call-site gate must short-circuit the whole
  // stream expression, not just drop its output.
  SEP2P_LOG(Debug) << expensive();
  SEP2P_LOG(Warning) << expensive();
  EXPECT_EQ(evaluations, 0);
  // At threshold the operands are evaluated (and the line is emitted).
  SEP2P_LOG(Error) << "threshold check: " << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevel original = SetLogLevel(LogLevel::kError);
  SEP2P_LOG(Warning) << "mix " << 1 << ' ' << 2.5 << ' ' << true;
  SetLogLevel(original);
}

}  // namespace
}  // namespace sep2p::util
