// The determinism contract of the parallel trial engine: thread count
// and scheduling must never leak into results. These tests run the same
// experiments serially and heavily threaded and require bit-identical
// output (EXPECT_EQ on doubles, not EXPECT_NEAR).

#include "sim/trial_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "net/failure.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/network.h"

namespace sep2p::sim {
namespace {

Parameters SmallNet(int threads) {
  Parameters p;
  p.n = 2000;
  p.colluding_fraction = 0.02;
  p.actor_count = 8;
  p.cache_size = 128;
  p.seed = 11;
  p.threads = threads;
  return p;
}

TEST(StreamSeedTest, DistinctIndicesGiveDistinctWellMixedSeeds) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(StreamSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
  // Deterministic: same (seed, index) -> same stream.
  EXPECT_EQ(StreamSeed(42, 7), StreamSeed(42, 7));
  EXPECT_NE(StreamSeed(42, 7), StreamSeed(43, 7));
}

TEST(StreamSeedTest, MixSeedSeparatesFamiliesAndLabels) {
  EXPECT_NE(MixSeed(42, 0x111), MixSeed(42, 0x222));
  EXPECT_NE(MixSeed(42, 0x111, 0, 0), MixSeed(42, 0x111, 1, 0));
  EXPECT_NE(MixSeed(42, 0x111, 0, 0), MixSeed(42, 0x111, 0, 1));
  // The (a, b) labels must not alias ((a+1), (b-1)) style neighbors.
  EXPECT_NE(MixSeed(42, 0x111, 1, 2), MixSeed(42, 0x111, 2, 1));
}

TEST(OnlineStatsMergeTest, MergeMatchesSequentialAdd) {
  util::Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.NextDouble() * 100 - 50);
  }

  OnlineStats sequential;
  for (double v : values) sequential.Add(v);

  // Merge uneven chunks (including an empty one).
  OnlineStats merged;
  const size_t cuts[] = {0, 17, 17, 400, 999, 1000};
  for (size_t c = 0; c + 1 < std::size(cuts); ++c) {
    OnlineStats chunk;
    for (size_t i = cuts[c]; i < cuts[c + 1]; ++i) chunk.Add(values[i]);
    merged.Merge(chunk);
  }

  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.min(), sequential.min());
  EXPECT_EQ(merged.max(), sequential.max());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), sequential.stddev(), 1e-9);
}

TEST(OnlineStatsMergeTest, MergeIntoEmptyCopies) {
  OnlineStats a;
  OnlineStats b;
  b.Add(3);
  b.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 4.0);
  a.Merge(OnlineStats());  // merging an empty is a no-op
  EXPECT_EQ(a.count(), 2u);
}

TEST(TrialRunnerTest, RunTrialsCoversEveryTrialExactlyOnce) {
  TrialRunner runner(/*threads=*/4);
  constexpr int kTrials = 1003;  // not a multiple of kShardSize
  std::vector<std::atomic<int>> hits(kTrials);
  Status status =
      runner.RunTrials(kTrials, /*seed=*/7, [&](int t, util::Rng&) {
        hits[t].fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  for (int t = 0; t < kTrials; ++t) EXPECT_EQ(hits[t].load(), 1);
}

TEST(TrialRunnerTest, PerTrialRngIndependentOfExecutionOrder) {
  // Record each trial's first draw under heavy threading, then compare
  // with a serial run: the streams must match exactly.
  constexpr int kTrials = 256;
  std::vector<uint64_t> parallel_draws(kTrials);
  TrialRunner parallel(8);
  ASSERT_TRUE(parallel
                  .RunTrials(kTrials, 42,
                             [&](int t, util::Rng& rng) {
                               parallel_draws[t] = rng.NextUint64();
                               return Status::Ok();
                             })
                  .ok());

  std::vector<uint64_t> serial_draws(kTrials);
  TrialRunner serial(1);
  EXPECT_EQ(serial.pool().workers(), 0);
  ASSERT_TRUE(serial
                  .RunTrials(kTrials, 42,
                             [&](int t, util::Rng& rng) {
                               serial_draws[t] = rng.NextUint64();
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_EQ(parallel_draws, serial_draws);
}

TEST(TrialRunnerTest, LowestIndexedFailingTrialWins) {
  TrialRunner runner(4);
  Status status = runner.RunTrials(500, 1, [&](int t, util::Rng&) {
    if (t == 77 || t == 402) {
      return Status::Internal("trial " + std::to_string(t));
    }
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "trial 77");
}

TEST(TrialRunnerTest, RunTrialRangeUsesGlobalTrialIndices) {
  // Two epoch-style calls must produce exactly the trials of one big
  // call: stream seeds key off the global index.
  std::vector<uint64_t> split(64), whole(64);
  TrialRunner runner(4);
  for (int begin : {0, 32}) {
    ASSERT_TRUE(runner
                    .RunTrialRange(begin, begin + 32, 5,
                                   [&](int t, util::Rng& rng) {
                                     split[t] = rng.NextUint64();
                                     return Status::Ok();
                                   })
                    .ok());
  }
  ASSERT_TRUE(runner
                  .RunTrials(64, 5,
                             [&](int t, util::Rng& rng) {
                               whole[t] = rng.NextUint64();
                               return Status::Ok();
                             })
                  .ok());
  EXPECT_EQ(split, whole);
}

TEST(TrialRunnerTest, NetworkBuildIsIdenticalForAnyThreadCount) {
  Result<std::unique_ptr<Network>> serial = Network::Build(SmallNet(1));
  Result<std::unique_ptr<Network>> parallel = Network::Build(SmallNet(8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  const dht::Directory& a = (*serial)->directory();
  const dht::Directory& b = (*parallel)->directory();
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pub(i), b.pub(i)) << "node " << i;
    EXPECT_TRUE(a.pos(i) == b.pos(i)) << "node " << i;
    EXPECT_EQ(a.colluding(i), b.colluding(i)) << "node " << i;
  }
}

// The flagship guarantee: a whole experiment harness produces
// bit-identical numbers serially and with 8 threads.
TEST(TrialRunnerTest, StrategyComparisonBitIdenticalAcrossThreadCounts) {
  const std::vector<double> c_fractions = {0.01, 0.03};
  const std::vector<std::string> strategies = {"SEP2P", "ES.AV"};
  auto serial =
      RunStrategyComparison(SmallNet(1), c_fractions, strategies,
                            /*trials=*/48);
  auto parallel =
      RunStrategyComparison(SmallNet(8), c_fractions, strategies,
                            /*trials=*/48);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const StrategyPoint& s = (*serial)[i];
    const StrategyPoint& p = (*parallel)[i];
    EXPECT_EQ(s.strategy, p.strategy);
    EXPECT_EQ(s.c_fraction, p.c_fraction);
    EXPECT_EQ(s.verification_cost, p.verification_cost);
    EXPECT_EQ(s.avg_corrupted, p.avg_corrupted);
    EXPECT_EQ(s.effectiveness, p.effectiveness);
    EXPECT_EQ(s.setup_crypto_latency, p.setup_crypto_latency);
    EXPECT_EQ(s.setup_crypto_work, p.setup_crypto_work);
    EXPECT_EQ(s.setup_msg_latency, p.setup_msg_latency);
    EXPECT_EQ(s.setup_msg_work, p.setup_msg_work);
    EXPECT_EQ(s.relocation_rate, p.relocation_rate);
  }
}

TEST(TrialRunnerTest, ExhaustiveSettersBitIdenticalAcrossThreadCounts) {
  auto serial = RunExhaustiveSetters(SmallNet(1), /*sample=*/64);
  auto parallel = RunExhaustiveSetters(SmallNet(8), /*sample=*/64);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->setters, parallel->setters);
  EXPECT_EQ(serial->verif_avg, parallel->verif_avg);
  EXPECT_EQ(serial->verif_max, parallel->verif_max);
  EXPECT_EQ(serial->verif_stddev, parallel->verif_stddev);
  EXPECT_EQ(serial->crypto_work_avg, parallel->crypto_work_avg);
  EXPECT_EQ(serial->crypto_work_max, parallel->crypto_work_max);
  EXPECT_EQ(serial->msg_work_avg, parallel->msg_work_avg);
  EXPECT_EQ(serial->crypto_lat_avg, parallel->crypto_lat_avg);
  EXPECT_EQ(serial->msg_lat_avg, parallel->msg_lat_avg);
}

TEST(TrialRunnerTest, CacheSweepBitIdenticalAcrossThreadCounts) {
  const std::vector<size_t> cache_sizes = {32, 128};
  auto serial = RunCacheSweep(SmallNet(1), cache_sizes, /*trials=*/40);
  auto parallel = RunCacheSweep(SmallNet(8), cache_sizes, /*trials=*/40);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].relocation_rate, (*parallel)[i].relocation_rate);
    EXPECT_EQ((*serial)[i].relocated_fraction,
              (*parallel)[i].relocated_fraction);
    EXPECT_EQ((*serial)[i].failed_fraction, (*parallel)[i].failed_fraction);
    EXPECT_EQ((*serial)[i].setup_msg_work, (*parallel)[i].setup_msg_work);
  }
}

// net::FailureModel mutates its Rng on every ShouldFail() draw, so the
// thread contract (failure.h) demands one instance per trial, seeded
// from the trial's stream. This test exercises exactly that pattern
// under heavy threading — the TSan build (-DSEP2P_SANITIZE=thread, test
// filter 'ThreadPool|TrialRunner') would flag any cross-thread sharing
// — and the serial comparison pins the bit-identical results.
TEST(TrialRunnerTest, PerTrialFailureModelsAreThreadConfined) {
  constexpr int kTrials = 512;
  constexpr uint64_t kModelSalt = 0xdead;
  auto run = [&](int threads, std::vector<int>& hits) {
    hits.assign(kTrials, 0);
    TrialRunner runner(threads);
    return runner.RunTrials(kTrials, 42, [&](int t, util::Rng& rng) {
      net::FailureModel failures(
          0.3, StreamSeed(MixSeed(42, kModelSalt),
                          static_cast<uint64_t>(t)));
      (void)rng;
      for (int step = 0; step < 64; ++step) {
        if (failures.ShouldFail()) ++hits[t];
      }
      return Status::Ok();
    });
  };
  std::vector<int> serial, parallel;
  ASSERT_TRUE(run(1, serial).ok());
  ASSERT_TRUE(run(8, parallel).ok());
  EXPECT_EQ(serial, parallel);
}

TEST(TrialRunnerTest, FailureSweepBitIdenticalAcrossThreadCounts) {
  const std::vector<double> probabilities = {0.0, 0.02};
  auto serial = RunFailureSweep(SmallNet(1), probabilities, /*trials=*/40);
  auto parallel = RunFailureSweep(SmallNet(8), probabilities, /*trials=*/40);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].first_try_success_rate,
              (*parallel)[i].first_try_success_rate);
    EXPECT_EQ((*serial)[i].avg_attempts, (*parallel)[i].avg_attempts);
    EXPECT_EQ((*serial)[i].give_up_rate, (*parallel)[i].give_up_rate);
  }
}

// The message-level acceptance criterion: per-trial SimNetworks seeded
// from SplitMix64 streams keep the whole sweep — retries, restarts and
// the sorted latency percentiles — bit-identical for any thread count.
TEST(TrialRunnerTest, MessageFailureSweepBitIdenticalAcrossThreadCounts) {
  std::vector<MessageFailureSetting> settings(2);
  settings[1].drop_probability = 0.05;
  settings[1].step_crash_probability = 0.002;
  auto serial =
      RunMessageFailureSweep(SmallNet(1), settings, /*trials=*/24);
  auto parallel =
      RunMessageFailureSweep(SmallNet(8), settings, /*trials=*/24);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const MessageFailurePoint& s = (*serial)[i];
    const MessageFailurePoint& p = (*parallel)[i];
    EXPECT_EQ(s.first_try_success_rate, p.first_try_success_rate);
    EXPECT_EQ(s.avg_retries, p.avg_retries);
    EXPECT_EQ(s.avg_replacements, p.avg_replacements);
    EXPECT_EQ(s.restart_rate, p.restart_rate);
    EXPECT_EQ(s.give_up_rate, p.give_up_rate);
    EXPECT_EQ(s.p50_latency_ms, p.p50_latency_ms);
    EXPECT_EQ(s.p99_latency_ms, p.p99_latency_ms);
  }
}

// Same criterion one layer up: a full sensing round per trial (selection
// + contribution wave + merge + publish) through node::AppRuntime.
TEST(TrialRunnerTest, AppFailureSweepBitIdenticalAcrossThreadCounts) {
  std::vector<MessageFailureSetting> settings(2);
  settings[1].drop_probability = 0.1;
  settings[1].step_crash_probability = 0.001;
  auto serial = RunAppFailureSweep(SmallNet(1), settings, /*trials=*/12);
  auto parallel = RunAppFailureSweep(SmallNet(8), settings, /*trials=*/12);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const AppFailurePoint& s = (*serial)[i];
    const AppFailurePoint& p = (*parallel)[i];
    EXPECT_EQ(s.first_try_success_rate, p.first_try_success_rate);
    EXPECT_EQ(s.avg_retries, p.avg_retries);
    EXPECT_EQ(s.avg_restarts, p.avg_restarts);
    EXPECT_EQ(s.avg_delivered_fraction, p.avg_delivered_fraction);
    EXPECT_EQ(s.give_up_rate, p.give_up_rate);
    EXPECT_EQ(s.p50_latency_ms, p.p50_latency_ms);
    EXPECT_EQ(s.p99_latency_ms, p.p99_latency_ms);
  }
  // Fault-free rounds deliver everything; faulty rounds degrade.
  EXPECT_EQ((*serial)[0].avg_delivered_fraction, 1.0);
  EXPECT_EQ((*serial)[0].first_try_success_rate, 1.0);
  EXPECT_LE((*serial)[1].avg_delivered_fraction, 1.0);
}

TEST(TrialRunnerTest, ComputeAverageKBitIdenticalAcrossThreadCounts) {
  KCurvePoint serial =
      ComputeAverageK(10000, 0.01, 1e-6, /*samples=*/500, /*seed=*/3,
                      /*threads=*/1);
  KCurvePoint parallel =
      ComputeAverageK(10000, 0.01, 1e-6, /*samples=*/500, /*seed=*/3,
                      /*threads=*/8);
  EXPECT_EQ(serial.avg_k, parallel.avg_k);
  EXPECT_EQ(serial.max_k_seen, parallel.max_k_seen);
}

}  // namespace
}  // namespace sep2p::sim
