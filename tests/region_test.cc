#include "dht/region.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dht/node_id.h"
#include "util/rng.h"

namespace sep2p::dht {
namespace {

TEST(WidthFromFractionTest, KnownValues) {
  EXPECT_EQ(WidthFromFraction(0.0), static_cast<RingPos>(0));
  EXPECT_EQ(WidthFromFraction(0.5), static_cast<RingPos>(1) << 127);
  EXPECT_EQ(WidthFromFraction(0.25), static_cast<RingPos>(1) << 126);
  EXPECT_EQ(WidthFromFraction(1.0), ~static_cast<RingPos>(0));
}

TEST(WidthFromFractionTest, RoundTripsThroughFraction) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double rs = std::pow(10.0, -12.0 * rng.NextDouble());
    double back = FractionFromWidth(WidthFromFraction(rs));
    EXPECT_NEAR(back / rs, 1.0, 1e-9) << "rs=" << rs;
  }
}

TEST(RegionTest, ContainsCenter) {
  Region r = Region::Centered(12345, 0.001);
  EXPECT_TRUE(r.Contains(static_cast<RingPos>(12345)));
}

TEST(RegionTest, SymmetricAroundCenter) {
  RingPos center = static_cast<RingPos>(1) << 100;
  Region r = Region::Centered(center, 0.01);
  RingPos half = r.half_width();
  EXPECT_TRUE(r.Contains(center + half));
  EXPECT_TRUE(r.Contains(center - half));
  EXPECT_FALSE(r.Contains(center + half + 1));
  EXPECT_FALSE(r.Contains(center - half - 1));
}

TEST(RegionTest, WrapsAroundZero) {
  // Region centered near 0 must contain points just below 2^128.
  Region r = Region::Centered(5, 0.001);
  RingPos wrapped = static_cast<RingPos>(0) - 10;  // 2^128 - 10
  EXPECT_TRUE(r.Contains(wrapped));
}

TEST(RegionTest, FullRingContainsEverything) {
  Region r = Region::Centered(0, 1.0);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    RingPos p = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                rng.NextUint64();
    EXPECT_TRUE(r.Contains(p));
  }
  EXPECT_DOUBLE_EQ(r.size(), 1.0);
}

TEST(RegionTest, SizeMatchesConstruction) {
  for (double rs : {1e-9, 1e-6, 1e-3, 0.1, 0.5}) {
    Region r = Region::Centered(777, rs);
    EXPECT_NEAR(r.size() / rs, 1.0, 1e-9) << "rs=" << rs;
  }
}

TEST(RegionTest, MembershipMatchesRingDistance) {
  util::Rng rng(7);
  Region r = Region::Centered(static_cast<RingPos>(1) << 90, 0.03);
  for (int i = 0; i < 1000; ++i) {
    RingPos p = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                rng.NextUint64();
    bool expected = RingDistance(r.center(), p) <= r.half_width();
    EXPECT_EQ(r.Contains(p), expected);
  }
}

TEST(RegionTest, BeginEndSpanTheArc) {
  Region r = Region::Centered(1000000, 0.001);
  EXPECT_TRUE(r.Contains(r.begin()));
  EXPECT_TRUE(r.Contains(r.end()));
  EXPECT_EQ(ClockwiseDistance(r.begin(), r.end()),
            r.half_width() << 1);
}

}  // namespace
}  // namespace sep2p::dht
