#include "apps/sensing.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class SensingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(1500, 0.01, /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(1500));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  util::Rng rng_{17};
};

TEST_F(SensingTest, AggregateApproximatesGroundTruth) {
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  app.GenerateWorkload(/*sources=*/300, /*readings_per_source=*/10, rng_);
  auto round = app.RunRound(/*trigger_index=*/3, rng_);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->sources, 300);
  EXPECT_EQ(round->aggregate.total_count(), 3000u);
  for (int ix = 0; ix < round->aggregate.grid; ++ix) {
    for (int iy = 0; iy < round->aggregate.grid; ++iy) {
      const CellStat& cell = round->aggregate.at(ix, iy);
      if (cell.count < 20) continue;  // sparse cells are noisy
      EXPECT_NEAR(cell.average(), app.GroundTruth(ix, iy), 0.5)
          << "cell " << ix << "," << iy;
    }
  }
}

TEST_F(SensingTest, AggregatorsAreSelectedSecurely) {
  ParticipatorySensingApp::Config config;
  config.aggregator_count = 6;
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get(), config);
  app.GenerateWorkload(50, 4, rng_);
  auto round = app.RunRound(9, rng_);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->aggregators.size(), 6u);
  EXPECT_EQ(round->main_aggregator, round->aggregators[0]);
  EXPECT_EQ(round->verifier_rejections, 0);
}

TEST_F(SensingTest, EverySourcePaysTwoKVerification) {
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  app.GenerateWorkload(40, 2, rng_);
  auto round = app.RunRound(5, rng_);
  ASSERT_TRUE(round.ok());
  // 2k with k >= 2, and even.
  EXPECT_GE(round->per_source_verification_ops, 4);
  EXPECT_EQ(static_cast<int>(round->per_source_verification_ops) % 2, 0);
}

TEST_F(SensingTest, DataSeenByDasIsAnonymizedButComplete) {
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  app.GenerateWorkload(100, 5, rng_);
  auto round = app.RunRound(2, rng_);
  ASSERT_TRUE(round.ok());
  size_t total_seen = 0;
  for (const auto& values : round->values_seen_by_da) {
    total_seen += values.size();
  }
  // Task atomicity: all readings flow through the DAs (values only), and
  // no single DA sees everything.
  EXPECT_EQ(total_seen, 500u);
  for (const auto& values : round->values_seen_by_da) {
    EXPECT_LT(values.size(), total_seen);
  }
}

TEST_F(SensingTest, NoReadingsMeansEmptyAggregate) {
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  auto round = app.RunRound(1, rng_);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->sources, 0);
  EXPECT_EQ(round->aggregate.total_count(), 0u);
}

TEST_F(SensingTest, RepeatedRoundsRotateAggregators) {
  // "Selected DA nodes will change at each iteration" (§5.3): different
  // rounds land in different DHT regions.
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  app.GenerateWorkload(20, 1, rng_);
  auto r1 = app.RunRound(4, rng_);
  auto r2 = app.RunRound(4, rng_);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->aggregators, r2->aggregators);
}

TEST_F(SensingTest, ContinuousRoundsRotateAggregatorsAndBoundLeakage) {
  ParticipatorySensingApp::Config config;
  config.aggregator_count = 8;
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get(), config);
  app.GenerateWorkload(/*sources=*/120, /*readings_per_source=*/3, rng_);

  auto result = app.RunContinuous(/*rounds=*/12, rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_values, 12u * 360u);

  // Rotation: far more distinct aggregators than one round's worth.
  EXPECT_GT(result->distinct_aggregators, 3 * config.aggregator_count);

  // Leakage bound: a single round's DA sees ~1/A of that round, i.e.
  // ~1/(A*rounds) of the stream; even with collisions nobody should
  // approach a full round's share of the total.
  EXPECT_LT(result->max_fraction_seen_by_one_node, 1.0 / 12);
}

TEST_F(SensingTest, FaultFreeRoundDeliversEverythingAndPublishes) {
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get());
  app.GenerateWorkload(80, 4, rng_);
  auto round = app.RunRound(6, rng_);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->selection_restarts, 0);
  EXPECT_EQ(round->readings_sent, 320);
  EXPECT_EQ(round->readings_delivered, 320);
  EXPECT_EQ(round->partials_merged,
            static_cast<int>(round->aggregators.size()));
  EXPECT_TRUE(round->published);
  EXPECT_GT(round->round_latency_us, 0u);
  EXPECT_EQ(simnet_->stats().retries, 0u);
}

TEST_F(SensingTest, LossyRoundDegradesButAveragesStayCorrect) {
  // Heavy loss: some contributions exhaust their retries. The round must
  // still complete, report the shrinkage honestly, and the merged
  // per-cell statistics must equal exactly what the DAs accepted —
  // no contribution double-counted, none invented.
  net::SimNetwork lossy = test::MakeSimNet(1500, /*drop=*/0.3,
                                           /*jitter_mean_us=*/0, /*seed=*/5);
  node::AppRuntime runtime(&lossy);
  ParticipatorySensingApp app(network_.get(), &pdms_, &runtime);
  app.GenerateWorkload(100, 5, rng_);
  auto round = app.RunRound(2, rng_);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  EXPECT_EQ(round->readings_sent, 500);
  EXPECT_GT(round->readings_delivered, 0);
  EXPECT_LT(round->readings_delivered, 500);  // with drop=0.3 some lose
  EXPECT_GT(lossy.stats().retries, 0u);

  // The merged aggregate counts exactly the values the DAs saw: dedup
  // under retransmission, and a lost partial only shrinks it further.
  // (seen can exceed delivered: a DA may accept a tuple whose ack is
  // then lost, making the client give up on an accepted contribution.)
  uint64_t seen_by_das = 0;
  for (const auto& values : round->values_seen_by_da) {
    seen_by_das += values.size();
  }
  EXPECT_GE(seen_by_das, static_cast<uint64_t>(round->readings_delivered));
  EXPECT_LE(seen_by_das, static_cast<uint64_t>(round->readings_sent));
  EXPECT_LE(round->aggregate.total_count(), seen_by_das);
  if (round->partials_merged ==
      static_cast<int>(round->aggregators.size())) {
    EXPECT_EQ(round->aggregate.total_count(), seen_by_das);
  }

  // Surviving dense cells still average to the ground truth: loss thins
  // the sample but never corrupts it.
  for (int ix = 0; ix < round->aggregate.grid; ++ix) {
    for (int iy = 0; iy < round->aggregate.grid; ++iy) {
      const CellStat& cell = round->aggregate.at(ix, iy);
      if (cell.count < 15) continue;
      EXPECT_NEAR(cell.average(), app.GroundTruth(ix, iy), 1.0)
          << "cell " << ix << "," << iy;
    }
  }
}

TEST_F(SensingTest, RetransmissionsNeverDoubleCount) {
  // Moderate loss so that many RPCs succeed on attempt >= 2 (the DA-side
  // handler runs, the ack is lost, the client retransmits): every
  // delivered reading must still be counted exactly once.
  net::SimNetwork lossy = test::MakeSimNet(1500, /*drop=*/0.2,
                                           /*jitter_mean_us=*/0, /*seed=*/9);
  node::AppRuntime runtime(&lossy);
  ParticipatorySensingApp app(network_.get(), &pdms_, &runtime);
  app.GenerateWorkload(60, 5, rng_);
  auto round = app.RunRound(4, rng_);
  ASSERT_TRUE(round.ok());
  ASSERT_GT(lossy.stats().retries, 0u);

  uint64_t seen_by_das = 0;
  for (const auto& values : round->values_seen_by_da) {
    seen_by_das += values.size();
  }
  // A reply lost after the handler accepted the tuple makes
  // seen >= delivered impossible to violate downward, and dedup makes
  // seen > delivered impossible upward... except for the accepted-but-
  // unacked case, where the DA saw it and the client gave up. So:
  // delivered <= seen <= sent, strictly bounded by dedup.
  EXPECT_GE(seen_by_das, static_cast<uint64_t>(round->readings_delivered));
  EXPECT_LE(seen_by_das, static_cast<uint64_t>(round->readings_sent));
}

}  // namespace
}  // namespace sep2p::apps
