// Fault-free cost parity: on a zero-drop, zero-jitter SimNetwork the
// network-measured Cost of every application round must equal the
// closed-form message counts the pre-runtime code charged by hand.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "apps/proxy.h"
#include "apps/query.h"
#include "apps/sensing.h"
#include "crypto/hash256.h"
#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class AppCostParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(1200, 0.01, /*cache=*/160);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 5 == 0) pdms_[i].AddConcept("pilot");
      if (i % 3 == 0) pdms_[i].AddConcept("age:40s");
      pdms_[i].SetAttribute("sick_leave_days", (i % 10) * 1.0);
    }
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(1200));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
  }

  // Messages a DHT store/lookup for `share_key` costs: the routing hops
  // plus the indexer round trip.
  double RouteMessages(uint32_t from, const std::string& share_key) {
    auto route = network_->overlay().RouteKey(
        from, crypto::Hash256::Of(share_key));
    EXPECT_TRUE(route.ok());
    return route->hops + 1.0;
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  util::Rng rng_{19};
};

TEST_F(AppCostParityTest, ProxyDeliveryCostsTwoMessages) {
  auto delivery = ForwardViaProxy(*runtime_, *network_, 3,
                                  network_->directory().pub(7),
                                  {1, 2, 3}, rng_);
  ASSERT_TRUE(delivery.ok());
  EXPECT_TRUE(delivery->delivered_ok);
  EXPECT_DOUBLE_EQ(delivery->cost.msg_work, 2.0);
  EXPECT_DOUBLE_EQ(delivery->cost.msg_latency, 2.0);
}

TEST_F(AppCostParityTest, ProxyChainCostsChainPlusOneMessages) {
  auto delivery = ForwardViaProxyChain(*runtime_, *network_, 3,
                                       network_->directory().pub(7),
                                       {1, 2, 3},
                                       /*chain_length=*/3, rng_);
  ASSERT_TRUE(delivery.ok());
  EXPECT_TRUE(delivery->delivered_ok);
  EXPECT_DOUBLE_EQ(delivery->cost.msg_work, 4.0);
}

TEST_F(AppCostParityTest, ConceptIndexPublishAndLookupMatchRouting) {
  ConceptIndex index(network_.get(), runtime_.get());  // p = s = 1
  std::set<std::string> concepts = {"pilot", "age:40s"};
  auto publish = index.Publish(17, concepts, rng_);
  ASSERT_TRUE(publish.ok());
  double expected = 0;
  for (const std::string& c : concepts) expected += RouteMessages(17, c + "#0");
  EXPECT_DOUBLE_EQ(publish->msg_work, expected);

  auto lookup = index.Lookup(23, "pilot");
  ASSERT_TRUE(lookup.ok());
  EXPECT_FALSE(lookup->indexer_unreachable);
  EXPECT_DOUBLE_EQ(lookup->cost.msg_work, RouteMessages(23, "pilot#0"));
}

TEST_F(AppCostParityTest, SensingRoundMatchesLegacyCounters) {
  ParticipatorySensingApp::Config config;
  config.aggregator_count = 4;
  ParticipatorySensingApp app(network_.get(), &pdms_, runtime_.get(),
                              config);
  app.GenerateWorkload(/*sources=*/50, /*readings_per_source=*/4, rng_);
  auto round = app.RunRound(3, rng_);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->readings_delivered, round->readings_sent);

  // Legacy: one message per contribution, one partial per DA, one
  // publish of the merged aggregate.
  EXPECT_DOUBLE_EQ(round->cost.msg_work,
                   round->selection_cost.msg_work + round->readings_sent +
                       config.aggregator_count + 1);
  // Legacy: every source verifies the DA actor list (2k asymmetric ops).
  EXPECT_DOUBLE_EQ(round->cost.crypto_work,
                   round->selection_cost.crypto_work +
                       round->sources * round->per_source_verification_ops);
  EXPECT_GT(round->per_source_verification_ops, 0);
}

TEST_F(AppCostParityTest, DiffusionRoundMatchesLegacyCounters) {
  ConceptIndex index(network_.get(), runtime_.get());
  DiffusionApp app(network_.get(), &pdms_, &index, runtime_.get());
  ASSERT_TRUE(app.PublishAllProfiles(rng_).ok());
  auto result = app.Diffuse(1, "pilot", "msg", rng_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->offer_failures, 0);
  ASSERT_EQ(result->indexer_failures, 0);

  // Legacy: the TF's index lookup plus one offer per candidate. The
  // lookup route is deterministic, so re-running it re-measures it.
  auto lookup = index.Lookup(result->target_finders[0], "pilot");
  ASSERT_TRUE(lookup.ok());
  EXPECT_DOUBLE_EQ(result->cost.msg_work,
                   result->selection_cost.msg_work + lookup->cost.msg_work +
                       result->candidates_contacted);

  // Legacy: one VAL verification (2k asymmetric ops) per contacted MI.
  const double verif =
      result->cost.crypto_work - result->selection_cost.crypto_work;
  ASSERT_GT(result->indexers_contacted, 0);
  const double per_indexer = verif / result->indexers_contacted;
  EXPECT_GT(per_indexer, 0);
  EXPECT_DOUBLE_EQ(per_indexer, 2.0 * std::round(per_indexer / 2.0));
}

TEST_F(AppCostParityTest, QueryRoundMatchesLegacyCounters) {
  ConceptIndex index(network_.get(), runtime_.get());
  DiffusionApp publisher(network_.get(), &pdms_, &index, runtime_.get());
  ASSERT_TRUE(publisher.PublishAllProfiles(rng_).ok());

  QueryApp app(network_.get(), &pdms_, &index, runtime_.get());
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  spec.aggregate = Aggregate::kAvg;
  auto result = app.Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->answer_delivered);
  ASSERT_EQ(result->lost_contributions, 0);
  ASSERT_EQ(result->da_failovers, 0);
  ASSERT_GT(result->contributors, 0u);

  // Legacy: two messages per contribution (target -> proxy -> DA), one
  // partial per DA slot, one merged answer back to the querier.
  const double app_msgs = result->cost.msg_work -
                          result->target_finding_cost.msg_work -
                          result->selection_cost.msg_work;
  EXPECT_DOUBLE_EQ(app_msgs, 2.0 * result->contributors +
                                 result->aggregators.size() + 1);

  // Legacy: one VAL verification (2k asymmetric ops) per contributor.
  const double verif = result->cost.crypto_work -
                       result->target_finding_cost.crypto_work -
                       result->selection_cost.crypto_work;
  const double per_contributor = verif / result->contributors;
  EXPECT_GT(per_contributor, 0);
  EXPECT_DOUBLE_EQ(per_contributor,
                   2.0 * std::round(per_contributor / 2.0));
}

}  // namespace
}  // namespace sep2p::apps
