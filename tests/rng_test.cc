#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace sep2p::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedValuesRespectBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedValuesAreRoughlyUniform) {
  Rng rng(9);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextUint64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen, (std::set<int64_t>{-2, -1, 0, 1, 2}));
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(heads, 2500, 250);
}

TEST(RngTest, FillBytesCoversAllPositions) {
  Rng rng(19);
  uint8_t buf[37] = {};
  // With 32 fills of 37 bytes, each byte position is 0 in all fills with
  // probability (1/256)^32 ~ never.
  bool any_nonzero[37] = {};
  for (int round = 0; round < 32; ++round) {
    rng.FillBytes(buf, sizeof(buf));
    for (size_t i = 0; i < sizeof(buf); ++i) {
      if (buf[i] != 0) any_nonzero[i] = true;
    }
  }
  for (bool nz : any_nonzero) EXPECT_TRUE(nz);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> sample = rng.SampleIndices(100, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleIndices(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleIsRoughlyUniformOnFirstPosition) {
  Rng rng(37);
  std::map<int, int> first_counts;
  for (int t = 0; t < 6000; ++t) {
    std::vector<int> v{0, 1, 2};
    rng.Shuffle(v);
    ++first_counts[v[0]];
  }
  for (auto& [value, count] : first_counts) {
    EXPECT_NEAR(count, 2000, 200) << "value " << value;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(41);
  parent2.Fork();
  EXPECT_EQ(parent.NextUint64(), parent2.NextUint64());
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

}  // namespace
}  // namespace sep2p::util
