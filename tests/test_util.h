// Shared helpers for the SEP2P test-suite.

#ifndef SEP2P_TESTS_TEST_UTIL_H_
#define SEP2P_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "crypto/sim_provider.h"
#include "dht/directory.h"
#include "dht/node_id.h"
#include "net/sim_network.h"
#include "node/app_runtime.h"
#include "sim/network.h"
#include "util/rng.h"

namespace sep2p::test {

// Builds a bare directory of `n` nodes with imposed ids (no CA/certs),
// enough for DHT-layer tests.
inline std::unique_ptr<dht::Directory> MakeDirectory(size_t n,
                                                     uint64_t seed = 1) {
  crypto::SimProvider provider;
  util::Rng rng(seed);
  std::vector<dht::NodeRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto pair = provider.GenerateKeyPair(rng);
    dht::NodeRecord record;
    record.pub = pair->pub;
    record.priv = std::move(pair->priv);
    record.id = dht::NodeIdForKey(record.pub);
    record.pos = record.id.ring_pos();
    records.push_back(std::move(record));
  }
  return std::make_unique<dht::Directory>(std::move(records));
}

// Small full network with fast defaults for protocol-layer tests.
inline std::unique_ptr<sim::Network> MakeNetwork(
    uint64_t n = 2000, double c_fraction = 0.01, size_t cache = 0,
    uint64_t seed = 42,
    sim::Parameters::ProviderKind provider =
        sim::Parameters::ProviderKind::kSim) {
  sim::Parameters params;
  params.n = n;
  params.colluding_fraction = c_fraction;
  params.cache_size = cache == 0 ? std::max<size_t>(64, n / 20) : cache;
  params.actor_count = 8;
  params.seed = seed;
  params.provider = provider;
  auto network = sim::Network::Build(params);
  if (!network.ok()) return nullptr;
  return std::move(network.value());
}

// Message network with explicit fault rates for app-layer tests.
inline net::SimNetwork MakeSimNet(uint32_t node_count, double drop = 0.0,
                                  uint64_t jitter_mean_us = 0,
                                  uint64_t seed = 7) {
  net::LinkModel link;
  link.jitter_mean_us = jitter_mean_us;
  link.drop_probability = drop;
  return net::SimNetwork(node_count, link, net::RetryPolicy{}, seed);
}

// Zero-fault message network (no jitter, no drops): every RPC succeeds
// on the first attempt and virtual time is a pure function of the call
// sequence, so measured costs are exactly comparable to the legacy
// hand-rolled counters.
inline net::SimNetwork MakeZeroFaultSimNet(uint32_t node_count,
                                           uint64_t seed = 7) {
  return MakeSimNet(node_count, 0.0, 0, seed);
}

}  // namespace sep2p::test

#endif  // SEP2P_TESTS_TEST_UTIL_H_
