#include "core/vrand.h"

#include <gtest/gtest.h>

#include <set>

#include "dht/region.h"
#include "tests/test_util.h"

namespace sep2p::core {
namespace {

class VrandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/2000, /*c_fraction=*/0.01);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  std::unique_ptr<sim::Network> network_;
  ProtocolContext ctx_;
  util::Rng rng_{7};
};

TEST_F(VrandTest, GeneratesVerifiableRandom) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(/*trigger_index=*/10, rng_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->vrnd.k(), 2);
  EXPECT_EQ(outcome->tl_indices.size(),
            static_cast<size_t>(outcome->vrnd.k()));
  auto verified = VerifyVrand(ctx_, outcome->vrnd);
  EXPECT_TRUE(verified.ok()) << verified.status().ToString();
}

TEST_F(VrandTest, VerificationCostIsTwoKPlusOne) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  auto cost = VerifyVrand(ctx_, outcome->vrnd);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(cost->crypto_work, 2.0 * outcome->vrnd.k() + 1);
}

TEST_F(VrandTest, ActualCryptoOpsMatchCostModel) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  network_->provider().meter().Reset();
  auto cost = VerifyVrand(ctx_, outcome->vrnd);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(network_->provider().meter().asym_ops(),
            static_cast<uint64_t>(cost->crypto_work));
}

TEST_F(VrandTest, TlsAreLegitimateForR1) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(25, rng_);
  ASSERT_TRUE(outcome.ok());
  dht::Region r1 = dht::Region::Centered(
      network_->directory().pos(25), outcome->vrnd.rs1);
  for (uint32_t tl : outcome->tl_indices) {
    EXPECT_TRUE(r1.Contains(network_->directory().pos(tl)));
    EXPECT_NE(tl, 25u);  // T is not its own guarantor
  }
}

TEST_F(VrandTest, ValueIsXorOfContributions) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(3, rng_);
  ASSERT_TRUE(outcome.ok());
  crypto::Hash256 expected;
  for (const VrandParticipant& p : outcome->vrnd.participants) {
    expected = expected.Xor(p.rnd);
  }
  EXPECT_EQ(outcome->vrnd.Value(), expected);
}

TEST_F(VrandTest, DistinctRunsProduceDistinctValues) {
  VrandProtocol protocol(ctx_);
  auto a = protocol.Generate(3, rng_);
  auto b = protocol.Generate(3, rng_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->vrnd.Value(), b->vrnd.Value());
}

TEST_F(VrandTest, SingleHonestParticipantRandomizesOutput) {
  // Commit-reveal property: fix all but one contribution; the XOR still
  // takes >= many distinct values across honest re-draws — i.e. k-1
  // colluders cannot pin the value. We emulate by re-running and checking
  // the low 16 bits of the value distribute over many buckets.
  VrandProtocol protocol(ctx_);
  std::set<uint8_t> last_bytes;
  for (int i = 0; i < 64; ++i) {
    auto outcome = protocol.Generate(3, rng_);
    ASSERT_TRUE(outcome.ok());
    last_bytes.insert(outcome->vrnd.Value().bytes()[31]);
  }
  EXPECT_GT(last_bytes.size(), 40u);
}

TEST_F(VrandTest, TamperedRndDetected) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  VerifiableRandom forged = outcome->vrnd;
  forged.participants[0].rnd = crypto::Hash256::Of("attacker value");
  auto verified = VerifyVrand(ctx_, forged);
  EXPECT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kSecurityViolation);
}

TEST_F(VrandTest, TamperedCertificateDetected) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  VerifiableRandom forged = outcome->vrnd;
  forged.participants[0].cert.serial ^= 1;
  EXPECT_FALSE(VerifyVrand(ctx_, forged).ok());
}

TEST_F(VrandTest, NonLegitimateParticipantDetected) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  VerifiableRandom forged = outcome->vrnd;
  // Replace participant 0 with a far-away (non-R1) node, fully signed.
  const dht::Directory& dir = network_->directory();
  dht::Region r1 =
      dht::Region::Centered(dir.pos(10), outcome->vrnd.rs1);
  uint32_t outsider = 0;
  for (uint32_t i = 0; i < dir.size(); ++i) {
    if (!r1.Contains(dir.pos(i))) {
      outsider = i;
      break;
    }
  }
  forged.participants[0].cert = dir.cert(outsider);
  auto sig = ctx_.SignAs(outsider, forged.SignedBytes());
  ASSERT_TRUE(sig.ok());
  forged.participants[0].sig = *sig;
  auto verified = VerifyVrand(ctx_, forged);
  EXPECT_FALSE(verified.ok());
}

TEST_F(VrandTest, StaleTimestampRejected) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  ProtocolContext later = ctx_;
  later.now = ctx_.now + ctx_.max_timestamp_age + 1;
  EXPECT_FALSE(VerifyVrand(later, outcome->vrnd).ok());
}

TEST_F(VrandTest, FailureInjectionAborts) {
  VrandProtocol protocol(ctx_);
  net::FailureModel always_fail(1.0, /*seed=*/1);
  auto outcome = protocol.Generate(10, rng_, &always_fail);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST_F(VrandTest, RestartAfterFailureSucceeds) {
  VrandProtocol protocol(ctx_);
  net::FailureModel flaky(0.2, /*seed=*/3);
  // The paper's remedy is simply restarting with a fresh RND_T.
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto outcome = protocol.Generate(10, rng_, &flaky);
    if (outcome.ok()) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no successful run in 100 attempts";
}

TEST_F(VrandTest, SetupCostHasFourMessageRounds) {
  VrandProtocol protocol(ctx_);
  auto outcome = protocol.Generate(10, rng_);
  ASSERT_TRUE(outcome.ok());
  const int k = outcome->vrnd.k();
  EXPECT_DOUBLE_EQ(outcome->cost.msg_latency, 4.0);
  EXPECT_DOUBLE_EQ(outcome->cost.msg_work, 4.0 * k);
  // Crypto: 1 parallel TL signature + T's own verification (2k+1).
  EXPECT_DOUBLE_EQ(outcome->cost.crypto_latency, 1.0 + 2.0 * k + 1);
  EXPECT_DOUBLE_EQ(outcome->cost.crypto_work, k + 2.0 * k + 1);
}

}  // namespace
}  // namespace sep2p::core
