// TaskMempool lifecycle, conservation and digest determinism
// (engine/mempool.h).

#include "engine/mempool.h"

#include <gtest/gtest.h>

namespace sep2p::engine {
namespace {

TEST(MempoolTest, SubmitAssignsDenseIdsInOrder) {
  TaskMempool pool;
  EXPECT_EQ(pool.Submit(TaskKind::kSelection, 3, 0, 11), 0u);
  EXPECT_EQ(pool.Submit(TaskKind::kDiffusion, 5, 100, 22), 1u);
  EXPECT_EQ(pool.Submit(TaskKind::kQuery, 7, 200, 33), 2u);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.task(1).kind, TaskKind::kDiffusion);
  EXPECT_EQ(pool.task(1).trigger, 5u);
  EXPECT_EQ(pool.task(1).arrival_us, 100u);
  EXPECT_EQ(pool.task(1).seed, 22u);
  EXPECT_EQ(pool.task(1).state, TaskState::kPending);
}

TEST(MempoolTest, LifecycleCountsAndDelays) {
  TaskMempool pool;
  pool.Submit(TaskKind::kSelection, 0, 1'000, 1);
  pool.Submit(TaskKind::kSelection, 1, 2'000, 2);
  pool.Submit(TaskKind::kSelection, 2, 3'000, 3);
  EXPECT_EQ(pool.submitted(), 3u);
  EXPECT_EQ(pool.admitted(), 0u);

  pool.Admit(0, 1'000);
  pool.Admit(1, 5'000);  // queued 3ms behind the window
  EXPECT_EQ(pool.in_flight(), 2u);
  EXPECT_FALSE(pool.AllResolved());

  pool.Complete(0, 9'000, /*result_digest=*/0xabc, /*restarts=*/1);
  pool.Fail(1, 6'000);
  EXPECT_EQ(pool.completed(), 1u);
  EXPECT_EQ(pool.failed(), 1u);
  EXPECT_TRUE(pool.AllResolved());

  EXPECT_EQ(pool.task(0).queue_delay_us(), 0u);
  EXPECT_EQ(pool.task(0).latency_us(), 8'000u);
  EXPECT_EQ(pool.task(1).queue_delay_us(), 3'000u);
  EXPECT_EQ(pool.task(0).restarts, 1);
  EXPECT_EQ(pool.task(0).result_digest, 0xabcu);
}

TEST(MempoolTest, VerdictRevocationMovesCompletedToFailed) {
  TaskMempool pool;
  pool.Submit(TaskKind::kQuery, 0, 0, 1);
  pool.Admit(0, 0);
  pool.Complete(0, 4'000, 0x1, 0);
  EXPECT_EQ(pool.completed(), 1u);

  // A deferred verification verdict came back false: the optimistic
  // completion is revoked. Conservation must hold throughout.
  pool.Fail(0, 4'000);
  EXPECT_EQ(pool.completed(), 0u);
  EXPECT_EQ(pool.failed(), 1u);
  EXPECT_EQ(pool.task(0).state, TaskState::kFailed);
  EXPECT_TRUE(pool.AllResolved());
  EXPECT_EQ(pool.admitted(), pool.completed() + pool.failed());
}

TEST(MempoolTest, ResultsDigestIsAFunctionOfCompletedTasks) {
  auto run = [](uint64_t digest0, bool fail_second) {
    TaskMempool pool;
    pool.Submit(TaskKind::kSelection, 0, 0, 1);
    pool.Submit(TaskKind::kSelection, 1, 10, 2);
    pool.Admit(0, 0);
    pool.Admit(1, 10);
    pool.Complete(0, 100, digest0, 0);
    if (fail_second) {
      pool.Fail(1, 50);
    } else {
      pool.Complete(1, 200, 0xbeef, 0);
    }
    return pool.ResultsDigest();
  };
  // Identical histories agree; any change to a completed task's result,
  // or to the completed set, changes the digest.
  EXPECT_EQ(run(0xaa, false), run(0xaa, false));
  EXPECT_NE(run(0xaa, false), run(0xab, false));
  EXPECT_NE(run(0xaa, false), run(0xaa, true));
  // Failed tasks do not contribute: two runs that fail task 1 agree
  // regardless of what task 1 would have produced.
  EXPECT_EQ(run(0xaa, true), run(0xaa, true));
}

}  // namespace
}  // namespace sep2p::engine
