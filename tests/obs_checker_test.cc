// Observability subsystem end-to-end: traced fault-injected executions
// of the selection protocol and of every application satisfy the
// checker's invariants; tracing never perturbs results; the JSONL
// exporter round-trips losslessly and its loader rejects corruption;
// and hand-built bad traces trip each invariant individually.

#include "obs/checker.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "apps/proxy.h"
#include "apps/query.h"
#include "apps/sensing.h"
#include "core/selection.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sim/experiment.h"
#include "tests/test_util.h"

namespace sep2p {
namespace {

using obs::Event;
using obs::EventKind;
using obs::Trace;

bool HasViolationContaining(const obs::CheckerReport& report,
                            const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ------------------------------------------- live traces: selection

class TracedSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/1500, /*c_fraction=*/0.01,
                                 /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  Result<core::SelectionProtocol::Outcome> RunWithRestarts(
      net::SimNetwork& simnet, util::Rng& rng, int budget = 25) {
    core::SelectionProtocol protocol(ctx_);
    for (int attempt = 1; attempt <= budget; ++attempt) {
      core::SelectionOptions options;
      options.network = &simnet;
      auto run = protocol.Run(/*trigger_index=*/5, rng, options);
      if (run.ok() || run.status().code() != StatusCode::kUnavailable) {
        return run;
      }
    }
    return Status::Unavailable("restart budget exhausted");
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
};

TEST_F(TracedSelectionTest, FaultySelectionTraceSatisfiesAllInvariants) {
  net::SimNetwork simnet = test::MakeSimNet(1500, /*drop=*/0.08,
                                            /*jitter_mean_us=*/5'000,
                                            /*seed=*/55);
  simnet.set_step_crash_probability(0.002);
  obs::TraceRecorder recorder;
  simnet.set_trace(&recorder);
  util::Rng rng(19);
  auto outcome = RunWithRestarts(simnet, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  simnet.FinalizeTrace();

  obs::CheckerReport report = obs::CheckTrace(recorder.trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  // The fault injection actually exercised the interesting paths.
  EXPECT_GT(report.sends, 0u);
  EXPECT_GT(report.drops, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.spans, 0u);
  EXPECT_GE(report.selections_completed, 1u);
}

TEST_F(TracedSelectionTest, TracingDoesNotPerturbSelection) {
  auto run = [&](bool traced) {
    net::SimNetwork simnet = test::MakeSimNet(1500, /*drop=*/0.08,
                                              /*jitter_mean_us=*/5'000,
                                              /*seed=*/55);
    simnet.set_step_crash_probability(0.002);
    obs::TraceRecorder recorder;
    if (traced) simnet.set_trace(&recorder);
    util::Rng rng(19);
    auto outcome = RunWithRestarts(simnet, rng);
    EXPECT_TRUE(outcome.ok());
    return std::make_tuple(outcome.ok() ? outcome->actor_indices
                                        : std::vector<uint32_t>{},
                           simnet.now_us(), simnet.stats().messages_sent,
                           simnet.stats().retries);
  };
  // Bit-identical results with the recorder attached or absent.
  EXPECT_EQ(run(false), run(true));
}

TEST_F(TracedSelectionTest, TraceIsIdenticalForAnyThreadCount) {
  sim::Parameters params;
  params.n = 800;
  params.actor_count = 8;
  params.cache_size = 128;
  std::vector<sim::MessageFailureSetting> settings(1);
  settings[0].drop_probability = 0.05;
  settings[0].jitter_mean_us = 10'000;

  auto sweep = [&](int threads) {
    sim::Parameters p = params;
    p.threads = threads;
    std::vector<obs::TraceRecorder> recorders;
    sim::SweepObservers observers;
    observers.recorders = &recorders;
    auto points = sim::RunMessageFailureSweep(p, settings, /*trials=*/3,
                                              /*max_attempts=*/25, &observers);
    EXPECT_TRUE(points.ok());
    EXPECT_EQ(recorders.size(), 1u);
    return recorders.empty() ? std::string()
                             : obs::ToJsonl(recorders[0].trace());
  };
  std::string single = sweep(1);
  EXPECT_GT(single.size(), 100u);
  EXPECT_EQ(single, sweep(4));
}

// --------------------- negative oracle: tampered REAL traces
//
// The synthetic CheckerTest cases below pin each invariant in
// isolation; these take a genuine recorded execution and apply the
// minimal tampering a malicious participant (or a corrupted log) would
// produce. The checker must reject every mutation — this is the
// trace-level half of the attack detection oracle (attack/oracle.h).

class TamperedTraceTest : public TracedSelectionTest {
 protected:
  // One clean, fault-free, message-level selection trace.
  Trace CleanTrace() {
    net::SimNetwork simnet = test::MakeSimNet(1500, /*drop=*/0.0,
                                              /*jitter_mean_us=*/1'000,
                                              /*seed=*/77);
    obs::TraceRecorder recorder;
    simnet.set_trace(&recorder);
    util::Rng rng(23);
    auto outcome = RunWithRestarts(simnet, rng);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    simnet.FinalizeTrace();
    EXPECT_TRUE(obs::CheckTrace(recorder.trace()).ok());
    return recorder.trace();
  }
};

TEST_F(TamperedTraceTest, DroppedAttestationSignatureIsFlagged) {
  // A colluding SL's attestation scrubbed from the record: the
  // selection-complete mark still promises k sl-attest signatures.
  Trace t = CleanTrace();
  for (size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::kSignature &&
        t.events[i].detail == "sl-attest") {
      t.events.erase(t.events.begin() + static_cast<long>(i));
      break;
    }
  }
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "sl-attest signatures"));
}

TEST_F(TamperedTraceTest, ForgedExtraAttestationIsFlagged) {
  // The inverse forgery: an extra attestation injected into the span.
  Trace t = CleanTrace();
  for (size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::kSignature &&
        t.events[i].detail == "sl-attest") {
      t.events.insert(t.events.begin() + static_cast<long>(i),
                      t.events[i]);
      break;
    }
  }
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "sl-attest signatures"));
}

TEST_F(TamperedTraceTest, DeliveryToRetroactivelyCrashedNodeIsFlagged) {
  // Rewrite history so some delivery's recipient had already crashed:
  // a dead node that keeps participating is exactly what an equivocating
  // operator's log would show.
  Trace t = CleanTrace();
  bool planted = false;
  for (size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == EventKind::kDeliver) {
      Event crash;
      crash.kind = EventKind::kCrash;
      crash.node = t.events[i].node;
      crash.t_us = t.events[i].t_us;  // crash at the delivery instant
      t.events.insert(t.events.begin() + static_cast<long>(i), crash);
      planted = true;
      break;
    }
  }
  ASSERT_TRUE(planted);
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "crashed node"));
}

TEST_F(TamperedTraceTest, InjectedSpontaneousRetryIsFlagged) {
  // A re-send with no preceding timeout/drop of the same rpc — the
  // signature of a forged (replayed) transmission in the log.
  Trace t = CleanTrace();
  bool planted = false;
  for (size_t i = 0; i < t.events.size() && !planted; ++i) {
    if (t.events[i].kind == EventKind::kAttempt &&
        t.events[i].value == 1 && t.events[i].rpc != 0) {
      Event retry = t.events[i];
      retry.kind = EventKind::kRetry;
      retry.value = 2;
      t.events.insert(t.events.begin() + static_cast<long>(i) + 1, retry);
      planted = true;
    }
  }
  ASSERT_TRUE(planted);
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "retry without preceding"));
}

// ------------------------------------------- live traces: applications

TEST(TracedAppsTest, SensingRoundTraceSatisfiesInvariants) {
  auto network = test::MakeNetwork(1500, 0.01, /*cache=*/192);
  ASSERT_NE(network, nullptr);
  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    pdms.emplace_back(i);
  }
  net::SimNetwork simnet = test::MakeSimNet(1500, /*drop=*/0.2,
                                            /*jitter_mean_us=*/0, /*seed=*/9);
  obs::TraceRecorder recorder;
  simnet.set_trace(&recorder);
  node::AppRuntime runtime(&simnet);
  apps::ParticipatorySensingApp app(network.get(), &pdms, &runtime);
  util::Rng rng(17);
  app.GenerateWorkload(/*sources=*/60, /*readings_per_source=*/5, rng);
  auto round = app.RunRound(/*trigger_index=*/4, rng);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  simnet.FinalizeTrace();

  obs::CheckerReport report = obs::CheckTrace(recorder.trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  EXPECT_GT(report.retries, 0u);  // drop=0.2 forces retransmissions
  EXPECT_GE(report.selections_completed, 1u);
  EXPECT_GT(report.spans, 0u);
}

TEST(TracedAppsTest, DiffusionAndConceptIndexTraceSatisfiesInvariants) {
  auto network = test::MakeNetwork(1200, 0.01, /*cache=*/160);
  ASSERT_NE(network, nullptr);
  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    pdms.emplace_back(i);
    if (i % 5 == 0) pdms.back().AddConcept("pilot");
  }
  net::SimNetwork simnet = test::MakeSimNet(1200, /*drop=*/0.05,
                                            /*jitter_mean_us=*/0, /*seed=*/3);
  obs::TraceRecorder recorder;
  simnet.set_trace(&recorder);
  node::AppRuntime runtime(&simnet);
  apps::ConceptIndex index(network.get(), &runtime);
  apps::DiffusionApp app(network.get(), &pdms, &index, &runtime);
  util::Rng rng(5);
  ASSERT_TRUE(app.PublishAllProfiles(rng).ok());
  auto result = app.Diffuse(/*initiator=*/1, "pilot", "hello", rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  simnet.FinalizeTrace();

  obs::CheckerReport report = obs::CheckTrace(recorder.trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  EXPECT_GE(report.selections_completed, 1u);
}

TEST(TracedAppsTest, QueryTraceSatisfiesInvariants) {
  auto network = test::MakeNetwork(1200, 0.01, /*cache=*/160);
  ASSERT_NE(network, nullptr);
  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < network->directory().size(); ++i) {
    pdms.emplace_back(i);
    if (i % 5 == 0) pdms.back().AddConcept("pilot");
    pdms.back().SetAttribute("sick_leave_days", i % 10);
  }
  net::SimNetwork simnet = test::MakeSimNet(1200, /*drop=*/0.05,
                                            /*jitter_mean_us=*/0, /*seed=*/8);
  obs::TraceRecorder recorder;
  simnet.set_trace(&recorder);
  node::AppRuntime runtime(&simnet);
  apps::ConceptIndex index(network.get(), &runtime);
  apps::DiffusionApp publish_helper(network.get(), &pdms, &index, &runtime);
  util::Rng rng(23);
  ASSERT_TRUE(publish_helper.PublishAllProfiles(rng).ok());
  apps::QueryApp app(network.get(), &pdms, &index, &runtime);
  apps::QuerySpec spec;
  spec.profile_expression = "pilot";
  spec.attribute = "sick_leave_days";
  spec.aggregate = apps::Aggregate::kAvg;
  auto result = app.Execute(/*querier=*/2, spec, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  simnet.FinalizeTrace();

  obs::CheckerReport report = obs::CheckTrace(recorder.trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  EXPECT_GE(report.selections_completed, 1u);
}

TEST(TracedAppsTest, ProxyAndChainTraceSatisfiesInvariants) {
  auto network = test::MakeNetwork(500, 0.01);
  ASSERT_NE(network, nullptr);
  net::SimNetwork simnet = test::MakeSimNet(500, /*drop=*/0.1,
                                            /*jitter_mean_us=*/0, /*seed=*/6);
  obs::TraceRecorder recorder;
  simnet.set_trace(&recorder);
  node::AppRuntime runtime(&simnet);
  util::Rng rng(6);
  const crypto::PublicKey recipient_pub = network->directory().pub(33);
  auto one = apps::ForwardViaProxy(runtime, *network, /*sender=*/7,
                                   recipient_pub, {1, 2, 3}, rng);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  auto chain = apps::ForwardViaProxyChain(runtime, *network, /*sender=*/7,
                                          recipient_pub, {4, 5},
                                          /*chain_length=*/3, rng);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  simnet.FinalizeTrace();

  obs::CheckerReport report = obs::CheckTrace(recorder.trace());
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  EXPECT_GT(report.spans, 0u);
}

// --------------------------------------------------------- exporters

class ExportTest : public ::testing::Test {
 protected:
  // One traced lossy selection shared by the exporter tests.
  void SetUp() override {
    network_ = test::MakeNetwork(1500, 0.01, /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeSimNet(1500, /*drop=*/0.05, /*jitter_mean_us=*/0,
                         /*seed=*/12));
    simnet_->set_trace(&recorder_);
    core::SelectionProtocol protocol(ctx_);
    util::Rng rng(31);
    for (int attempt = 0; attempt < 25; ++attempt) {
      core::SelectionOptions options;
      options.network = simnet_.get();
      auto run = protocol.Run(/*trigger_index=*/5, rng, options);
      if (run.ok()) break;
      ASSERT_EQ(run.status().code(), StatusCode::kUnavailable);
    }
    simnet_->FinalizeTrace();
    ASSERT_GT(recorder_.size(), 0u);
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
  obs::TraceRecorder recorder_;
  std::unique_ptr<net::SimNetwork> simnet_;
};

TEST_F(ExportTest, JsonlRoundTripIsExact) {
  const Trace& original = recorder_.trace();
  std::string text = obs::ToJsonl(original);
  auto loaded = obs::FromJsonl(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, original.meta);
  ASSERT_EQ(loaded->events.size(), original.events.size());
  EXPECT_EQ(loaded->events, original.events);
  // The checker sees the identical trace after a round trip.
  obs::CheckerReport live = obs::CheckTrace(original);
  obs::CheckerReport reloaded = obs::CheckTrace(*loaded);
  EXPECT_EQ(live.violations, reloaded.violations);
  EXPECT_EQ(live.sends, reloaded.sends);
  EXPECT_EQ(live.spans, reloaded.spans);
}

TEST_F(ExportTest, ChromeTraceIsWellFormed) {
  std::string chrome = obs::ToChromeTrace(recorder_.trace());
  EXPECT_EQ(chrome.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(chrome.find("\"name\":\"selection\""), std::string::npos);
  // Every complete event must carry a non-negative duration.
  EXPECT_EQ(chrome.find("\"dur\":-"), std::string::npos);
}

TEST_F(ExportTest, TruncatedJsonlIsRejected) {
  std::string text = obs::ToJsonl(recorder_.trace());
  // Cutting into the final line leaves malformed JSON on it.
  EXPECT_FALSE(obs::FromJsonl(text.substr(0, text.size() - 5)).ok());
  // A handful of arbitrary mid-file cuts; cuts that land exactly on a
  // line boundary are valid prefixes, skipped here and covered below.
  for (size_t cut : {text.size() / 3, text.size() / 2}) {
    if (text[cut - 1] == '\n') continue;
    EXPECT_FALSE(obs::FromJsonl(text.substr(0, cut)).ok()) << cut;
  }
}

TEST_F(ExportTest, LineBoundaryTruncationFailsTheChecker) {
  // A cut on a line boundary parses (every line is valid), but the
  // resulting trace is incomplete — open spans, broken conservation —
  // and the checker must say so.
  std::string text = obs::ToJsonl(recorder_.trace());
  size_t begin = text.find("span-begin");
  ASSERT_NE(begin, std::string::npos);
  size_t cut = text.find('\n', begin);
  ASSERT_NE(cut, std::string::npos);
  auto truncated = obs::FromJsonl(text.substr(0, cut + 1));
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_FALSE(obs::CheckTrace(*truncated).ok());
}

TEST_F(ExportTest, CorruptedJsonlIsRejected) {
  std::string text = obs::ToJsonl(recorder_.trace());

  // Foreign header.
  std::string bad_header = text;
  bad_header.replace(bad_header.find("sep2p_trace"), 11, "other_trace");
  EXPECT_FALSE(obs::FromJsonl(bad_header).ok());

  // Unknown key on an event line.
  EXPECT_FALSE(obs::FromJsonl(text + "{\"bogus\":1}\n").ok());

  // Unknown event kind.
  EXPECT_FALSE(obs::FromJsonl(text + "{\"k\":\"warp\"}\n").ok());

  // A control byte flipped into the middle of the file.
  std::string flipped = text;
  flipped[flipped.size() / 2] = '\x01';
  EXPECT_FALSE(obs::FromJsonl(flipped).ok());

  // Garbage and emptiness.
  EXPECT_FALSE(obs::FromJsonl("not json at all\n").ok());
  EXPECT_FALSE(obs::FromJsonl("").ok());
}

// ------------------------------------- synthetic invariant violations

Trace BareTrace(uint32_t node_count = 8, int max_attempts = 4) {
  Trace t;
  t.meta.node_count = node_count;
  t.meta.max_attempts = max_attempts;
  return t;
}

Event Ev(EventKind kind, uint64_t t_us = 0) {
  Event e;
  e.kind = kind;
  e.t_us = t_us;
  return e;
}

Event Rpc(EventKind kind, uint64_t rpc, uint64_t value = 0) {
  Event e;
  e.kind = kind;
  e.rpc = rpc;
  e.value = value;
  e.node = 0;
  e.peer = 1;
  return e;
}

Event Shutdown(uint64_t in_flight) {
  Event e;
  e.kind = EventKind::kMark;
  e.detail = "shutdown";
  e.value = in_flight;
  return e;
}

TEST(CheckerTest, CleanRetryAfterDropPasses) {
  Trace t = BareTrace();
  t.events = {Rpc(EventKind::kRpcBegin, 1),
              Rpc(EventKind::kAttempt, 1, 1),
              Rpc(EventKind::kSend, 1),
              Rpc(EventKind::kDrop, 1),
              Rpc(EventKind::kRetry, 1, 2),
              Rpc(EventKind::kAttempt, 1, 2),
              Rpc(EventKind::kSend, 1),
              Rpc(EventKind::kDeliver, 1),
              Rpc(EventKind::kRpcEnd, 1, 2),
              Shutdown(0)};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? "suppressed"
                                   : report.violations[0]);
  EXPECT_EQ(report.sends, 2u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_EQ(report.rpcs, 1u);
}

TEST(CheckerTest, SpontaneousRetryIsFlagged) {
  Trace t = BareTrace();
  t.events = {Rpc(EventKind::kRpcBegin, 1), Rpc(EventKind::kAttempt, 1, 1),
              Rpc(EventKind::kSend, 1), Rpc(EventKind::kRetry, 1, 2),
              Rpc(EventKind::kSend, 1), Rpc(EventKind::kDeliver, 1),
              Rpc(EventKind::kRpcEnd, 1, 2), Shutdown(1)};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "retry without preceding"));
}

TEST(CheckerTest, AttemptBeyondBudgetIsFlagged) {
  Trace t = BareTrace(/*node_count=*/8, /*max_attempts=*/4);
  t.events = {Rpc(EventKind::kRpcBegin, 1),
              Rpc(EventKind::kAttempt, 1, 5)};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "exceeded"));
}

TEST(CheckerTest, RetryEventsOutsideAnyRpcAreFlagged) {
  Trace t = BareTrace();
  Event retry = Rpc(EventKind::kRetry, /*rpc=*/9, 2);  // no rpc-begin
  t.events = {retry};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "outside any rpc"));
}

TEST(CheckerTest, DeliveryAtOrAfterCrashIsFlagged) {
  Trace t = BareTrace();
  Event crash = Ev(EventKind::kCrash, 100);
  crash.node = 3;
  Event late = Ev(EventKind::kDeliver, 150);
  late.node = 3;
  t.events = {crash, late};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "crashed node 3"));
}

TEST(CheckerTest, ParallelBranchDeliveryBeforeCrashTimeIsAllowed) {
  // Later in the log but timestamped before the crash: a parallel
  // branch whose virtual clock rewound — legitimate, not a violation.
  Trace t = BareTrace();
  Event crash = Ev(EventKind::kCrash, 100);
  crash.node = 3;
  Event early = Ev(EventKind::kDeliver, 50);
  early.node = 3;
  t.events = {crash, early, Ev(EventKind::kSend), Shutdown(0)};
  t.events[2].node = 0;
  EXPECT_TRUE(obs::CheckTrace(t).ok());
}

TEST(CheckerTest, NodeIdOutOfRangeIsFlagged) {
  Trace t = BareTrace(/*node_count=*/8);
  Event e = Ev(EventKind::kSend);
  e.node = 99;
  t.events = {e, Shutdown(1)};
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "out of range"));
}

TEST(CheckerTest, BrokenConservationIsFlagged) {
  // Two sends, one deliver, shutdown says nothing in flight.
  Trace t = BareTrace();
  t.events = {Ev(EventKind::kSend), Ev(EventKind::kSend),
              Ev(EventKind::kDeliver), Shutdown(0)};
  for (Event& e : t.events) e.node = 0;
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "conservation"));

  // The missing message accounted as in flight: conserved again.
  t.events.back() = Shutdown(1);
  EXPECT_TRUE(obs::CheckTrace(t).ok());
}

TEST(CheckerTest, MoreDeliversThanSendsIsFlaggedWithoutShutdownMark) {
  Trace t = BareTrace();
  t.events = {Ev(EventKind::kDeliver)};
  t.events[0].node = 0;
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "conservation"));
}

TEST(CheckerTest, SpanDisciplineViolationsAreFlagged) {
  auto begin = [](uint64_t id, uint64_t parent) {
    Event e = Ev(EventKind::kSpanBegin);
    e.span = id;
    e.parent = parent;
    e.node = 0;
    e.detail = "phase";
    return e;
  };
  auto end = [](uint64_t id) {
    Event e = Ev(EventKind::kSpanEnd);
    e.span = id;
    e.node = 0;
    return e;
  };

  // Wrong declared parent.
  Trace t = BareTrace();
  t.events = {begin(1, 0), begin(2, 7), end(2), end(1)};
  EXPECT_TRUE(HasViolationContaining(obs::CheckTrace(t), "wrong parent"));

  // Span-end out of nesting order.
  t.events = {begin(1, 0), begin(2, 1), end(1), end(2)};
  EXPECT_TRUE(HasViolationContaining(obs::CheckTrace(t),
                                     "does not match innermost"));

  // Span never closed.
  t.events = {begin(1, 0)};
  EXPECT_TRUE(HasViolationContaining(obs::CheckTrace(t), "left open"));

  // Span id reused.
  t.events = {begin(1, 0), end(1), begin(1, 0), end(1)};
  EXPECT_TRUE(HasViolationContaining(obs::CheckTrace(t), "reused"));
}

TEST(CheckerTest, SelectionSignatureCountIsEnforced) {
  auto make = [](uint64_t signatures, uint64_t expected_k) {
    Trace t = BareTrace();
    Event begin = Ev(EventKind::kSpanBegin);
    begin.span = 1;
    begin.node = 0;
    begin.detail = "selection";
    t.events.push_back(begin);
    for (uint64_t i = 0; i < signatures; ++i) {
      Event sig = Ev(EventKind::kSignature);
      sig.span = 1;
      sig.node = 2;
      sig.detail = "sl-attest";
      t.events.push_back(sig);
    }
    Event mark = Ev(EventKind::kMark);
    mark.span = 1;
    mark.node = 0;
    mark.detail = "selection-complete";
    mark.value = expected_k;
    t.events.push_back(mark);
    Event end = Ev(EventKind::kSpanEnd);
    end.span = 1;
    end.node = 0;
    t.events.push_back(end);
    return t;
  };

  EXPECT_TRUE(obs::CheckTrace(make(3, 3)).ok());
  obs::CheckerReport missing = obs::CheckTrace(make(2, 3));
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(HasViolationContaining(missing, "sl-attest signatures"));
  EXPECT_FALSE(obs::CheckTrace(make(4, 3)).ok());
}

TEST(CheckerTest, UnsupportedVersionIsRejected) {
  Trace t = BareTrace();
  t.meta.version = 2;
  obs::CheckerReport report = obs::CheckTrace(t);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolationContaining(report, "version"));
}

}  // namespace
}  // namespace sep2p
