#include "net/cost.h"

#include <gtest/gtest.h>

namespace sep2p::net {
namespace {

TEST(CostTest, StepSetsLatencyAndWorkEqually) {
  Cost c = Cost::Step(3, 5);
  EXPECT_DOUBLE_EQ(c.crypto_latency, 3);
  EXPECT_DOUBLE_EQ(c.crypto_work, 3);
  EXPECT_DOUBLE_EQ(c.msg_latency, 5);
  EXPECT_DOUBLE_EQ(c.msg_work, 5);
}

TEST(CostTest, SequentialCompositionAdds) {
  Cost c = Cost::Step(1, 2);
  c.Then(Cost::Step(3, 4));
  EXPECT_DOUBLE_EQ(c.crypto_latency, 4);
  EXPECT_DOUBLE_EQ(c.msg_latency, 6);
  EXPECT_DOUBLE_EQ(c.crypto_work, 4);
  EXPECT_DOUBLE_EQ(c.msg_work, 6);
}

TEST(CostTest, ParallelTakesMaxLatencySumWork) {
  Cost a = Cost::Step(2, 10);
  Cost b = Cost::Step(5, 1);
  Cost par = Cost::Par({a, b});
  EXPECT_DOUBLE_EQ(par.crypto_latency, 5);  // max
  EXPECT_DOUBLE_EQ(par.msg_latency, 10);    // max per metric
  EXPECT_DOUBLE_EQ(par.crypto_work, 7);     // sum
  EXPECT_DOUBLE_EQ(par.msg_work, 11);
}

TEST(CostTest, ParIdenticalScalesWorkOnly) {
  Cost branch = Cost::Step(2, 3);
  Cost par = Cost::ParIdentical(branch, 4);
  EXPECT_DOUBLE_EQ(par.crypto_latency, 2);
  EXPECT_DOUBLE_EQ(par.msg_latency, 3);
  EXPECT_DOUBLE_EQ(par.crypto_work, 8);
  EXPECT_DOUBLE_EQ(par.msg_work, 12);
}

TEST(CostTest, ParIdenticalZeroBranches) {
  Cost par = Cost::ParIdentical(Cost::Step(2, 3), 0);
  EXPECT_DOUBLE_EQ(par.crypto_latency, 0);
  EXPECT_DOUBLE_EQ(par.crypto_work, 0);
}

TEST(CostTest, EmptyParallelIsZero) {
  Cost par = Cost::Par({});
  EXPECT_DOUBLE_EQ(par.crypto_latency, 0);
  EXPECT_DOUBLE_EQ(par.msg_work, 0);
}

TEST(CostTest, WorkOnlyInsideParKeepsLatencyZero) {
  // Off-critical-path branches (e.g. data sources verifying in
  // parallel) must not leak into latency even when composed under Par.
  Cost par = Cost::Par({Cost::WorkOnly(4, 6), Cost::WorkOnly(2, 1)});
  EXPECT_DOUBLE_EQ(par.crypto_latency, 0);
  EXPECT_DOUBLE_EQ(par.msg_latency, 0);
  EXPECT_DOUBLE_EQ(par.crypto_work, 6);
  EXPECT_DOUBLE_EQ(par.msg_work, 7);

  // Mixed with a real step, the step alone sets the critical path.
  Cost mixed = Cost::Par({Cost::Step(1, 2), Cost::WorkOnly(9, 9)});
  EXPECT_DOUBLE_EQ(mixed.crypto_latency, 1);
  EXPECT_DOUBLE_EQ(mixed.msg_latency, 2);
  EXPECT_DOUBLE_EQ(mixed.crypto_work, 10);
  EXPECT_DOUBLE_EQ(mixed.msg_work, 11);

  // And ParIdentical of WorkOnly scales totals without creating latency.
  Cost many = Cost::ParIdentical(Cost::WorkOnly(1, 2), 5);
  EXPECT_DOUBLE_EQ(many.crypto_latency, 0);
  EXPECT_DOUBLE_EQ(many.msg_latency, 0);
  EXPECT_DOUBLE_EQ(many.crypto_work, 5);
  EXPECT_DOUBLE_EQ(many.msg_work, 10);
}

TEST(CostTest, ThenChainingEquivalentToPlusEquals) {
  const Cost steps[] = {Cost::Step(1, 2), Cost::WorkOnly(3, 4),
                        Cost::ParIdentical(Cost::Step(2, 1), 3)};
  Cost chained;
  chained.Then(steps[0]).Then(steps[1]).Then(steps[2]);
  Cost accumulated;
  for (const Cost& s : steps) accumulated += s;
  EXPECT_DOUBLE_EQ(chained.crypto_latency, accumulated.crypto_latency);
  EXPECT_DOUBLE_EQ(chained.msg_latency, accumulated.msg_latency);
  EXPECT_DOUBLE_EQ(chained.crypto_work, accumulated.crypto_work);
  EXPECT_DOUBLE_EQ(chained.msg_work, accumulated.msg_work);
}

TEST(CostTest, MixedCompositionMatchesHandComputation) {
  // A protocol doing: 1 sequential sign, then k=3 parallel workers each
  // doing (2 crypto, 4 msgs), then 1 closing message.
  Cost c = Cost::Step(1, 0);
  c.Then(Cost::ParIdentical(Cost::Step(2, 4), 3));
  c.Then(Cost::Step(0, 1));
  EXPECT_DOUBLE_EQ(c.crypto_latency, 3);  // 1 + 2 + 0
  EXPECT_DOUBLE_EQ(c.crypto_work, 7);     // 1 + 6 + 0
  EXPECT_DOUBLE_EQ(c.msg_latency, 5);     // 0 + 4 + 1
  EXPECT_DOUBLE_EQ(c.msg_work, 13);       // 0 + 12 + 1
}

TEST(CostTest, ToStringIsReadable) {
  Cost c = Cost::Step(1, 2);
  std::string s = c.ToString();
  EXPECT_NE(s.find("crypto"), std::string::npos);
  EXPECT_NE(s.find("msg"), std::string::npos);
}

}  // namespace
}  // namespace sep2p::net
