#include "strategies/strategy.h"

#include <gtest/gtest.h>

#include "strategies/es_strategies.h"
#include "strategies/mhash.h"
#include "tests/test_util.h"

namespace sep2p::strategies {
namespace {

class StrategiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/4000, /*c_fraction=*/0.02,
                                 /*cache=*/256);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  // Average corrupted actors over `trials` runs.
  double AverageCorrupted(Strategy& strategy, int trials,
                          uint64_t seed = 17) {
    util::Rng rng(seed);
    double total = 0;
    for (int t = 0; t < trials; ++t) {
      uint32_t trigger = rng.NextUint64(network_->directory().size());
      auto run = strategy.Run(trigger, rng);
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      if (run.ok()) total += run->corrupted_actors;
    }
    return total / trials;
  }

  double IdealCorrupted() const {
    const sim::Parameters& p = network_->params();
    return static_cast<double>(p.actor_count) * p.c() / p.n;
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
};

TEST_F(StrategiesTest, FactoryKnowsAllStrategies) {
  AdversaryConfig adv;
  for (const char* name : {"SEP2P", "ES.NAV", "ES.AV", "M.Hash"}) {
    auto strategy = MakeStrategy(name, ctx_, adv);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_STREQ(strategy->name(), name);
  }
  EXPECT_EQ(MakeStrategy("bogus", ctx_, adv), nullptr);
}

TEST_F(StrategiesTest, VerificationCostFormulasMatchPaper) {
  AdversaryConfig passive = AdversaryConfig::Passive();
  util::Rng rng(3);
  // SEP2P and ES.NAV: 2k. ES.AV: 2k+A+1. M.Hash: 2k+A.
  Sep2pStrategy sep2p(ctx_, passive);
  auto r = sep2p.Run(1, rng);
  ASSERT_TRUE(r.ok());
  double two_k = r->verification_cost;
  EXPECT_GE(two_k, 4);  // k >= 2
  EXPECT_EQ(static_cast<int>(two_k) % 2, 0);

  EsNavStrategy nav(ctx_, passive);
  auto rn = nav.Run(1, rng);
  ASSERT_TRUE(rn.ok());
  EsAvStrategy av(ctx_, passive);
  auto ra = av.Run(1, rng);
  ASSERT_TRUE(ra.ok());
  MHashStrategy mh(ctx_, passive);
  auto rm = mh.Run(1, rng);
  ASSERT_TRUE(rm.ok());

  EXPECT_DOUBLE_EQ(ra->verification_cost,
                   rn->verification_cost + ctx_.actor_count + 1);
  EXPECT_DOUBLE_EQ(rm->verification_cost,
                   rn->verification_cost + ctx_.actor_count);
}

TEST_F(StrategiesTest, AllStrategiesSelectAActorsWhenHonest) {
  AdversaryConfig passive = AdversaryConfig::Passive();
  util::Rng rng(5);
  for (const char* name : {"SEP2P", "ES.NAV", "ES.AV", "M.Hash"}) {
    auto strategy = MakeStrategy(name, ctx_, passive);
    auto run = strategy->Run(2, rng);
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    EXPECT_EQ(run->actors.size(), static_cast<size_t>(ctx_.actor_count))
        << name;
    EXPECT_FALSE(run->attacker_controlled) << name;
  }
}

TEST_F(StrategiesTest, Sep2pStaysIdealUnderFullAdversary) {
  AdversaryConfig full;  // claim + stuff + hide
  full.hide_honest_cache_entries = true;
  Sep2pStrategy strategy(ctx_, full);
  double avg = AverageCorrupted(strategy, 60);
  // Ideal is A*C/N = 8 * 80/4000 = 0.16; allow generous sampling noise,
  // but far below attacker control (A = 8).
  EXPECT_LE(avg, 4 * IdealCorrupted() + 0.35);
}

TEST_F(StrategiesTest, EsNavCollapsesUnderAdversary) {
  AdversaryConfig full;
  EsNavStrategy strategy(ctx_, full);
  double avg = AverageCorrupted(strategy, 120);
  // With 2% colluders and a tolerance region holding >= 1 node w.h.p.,
  // a large fraction of runs are captured, each yielding A corrupted.
  EXPECT_GT(avg, 5 * IdealCorrupted());
}

TEST_F(StrategiesTest, EsAvBoundsCorruptionByCollusionSize) {
  AdversaryConfig full;
  EsAvStrategy strategy(ctx_, full);
  util::Rng rng(19);
  for (int t = 0; t < 30; ++t) {
    uint32_t trigger = rng.NextUint64(network_->directory().size());
    auto run = strategy.Run(trigger, rng);
    ASSERT_TRUE(run.ok());
    // Actor verification caps the damage at min(A, C) real colluders.
    EXPECT_LE(run->corrupted_actors,
              std::min<uint64_t>(ctx_.actor_count, network_->params().c()));
  }
}

TEST_F(StrategiesTest, MHashLeaksPerDestination) {
  AdversaryConfig full;
  MHashStrategy strategy(ctx_, full);
  double avg = AverageCorrupted(strategy, 40);
  EXPECT_GT(avg, 2 * IdealCorrupted());   // clearly worse than ideal
  EXPECT_LT(avg, ctx_.actor_count);        // but not full capture either
}

TEST_F(StrategiesTest, PassiveAdversaryMakesAllStrategiesNearIdeal) {
  AdversaryConfig passive = AdversaryConfig::Passive();
  for (const char* name : {"SEP2P", "ES.NAV", "ES.AV", "M.Hash"}) {
    auto strategy = MakeStrategy(name, ctx_, passive);
    double avg = AverageCorrupted(*strategy, 40, /*seed=*/23);
    EXPECT_LE(avg, 6 * IdealCorrupted() + 0.4) << name;
  }
}

TEST_F(StrategiesTest, MHashSetupMessagesScaleWithActors) {
  AdversaryConfig passive = AdversaryConfig::Passive();
  core::ProtocolContext big = ctx_;
  big.actor_count = 32;
  MHashStrategy small_strategy(ctx_, passive);  // A = 8
  MHashStrategy big_strategy(big, passive);     // A = 32
  util::Rng rng(29);
  auto small_run = small_strategy.Run(3, rng);
  auto big_run = big_strategy.Run(3, rng);
  ASSERT_TRUE(small_run.ok() && big_run.ok());
  EXPECT_GT(big_run->setup_cost.msg_work,
            small_run->setup_cost.msg_work * 2);
}

TEST_F(StrategiesTest, Sep2pSetupWorkIsHighestButVerificationLowest) {
  // The paper's trade-off: SEP2P pays at setup so verifiers pay 2k only.
  AdversaryConfig passive = AdversaryConfig::Passive();
  util::Rng rng(31);
  Sep2pStrategy sep2p(ctx_, passive);
  EsNavStrategy nav(ctx_, passive);
  auto rs = sep2p.Run(7, rng);
  auto rn = nav.Run(7, rng);
  ASSERT_TRUE(rs.ok() && rn.ok());
  EXPECT_GT(rs->setup_cost.crypto_work, rn->setup_cost.crypto_work);
  // Both cost 2k, but k is chosen per region (SEP2P at the setter's
  // point, ES.NAV at the trigger's), so compare against the k-table
  // ceiling rather than each other.
  EXPECT_LE(rs->verification_cost, 2.0 * network_->ktable().k_max());
  EXPECT_LE(rn->verification_cost, 2.0 * network_->ktable().k_max());
}

}  // namespace
}  // namespace sep2p::strategies
