// Exporter round-trips: JSONL -> strict load -> re-export is
// byte-identical (synthetic and live traces), the loader rejects every
// deviation, and the Chrome export is valid JSON whose "X" events pair
// every span open with its close.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/experiment.h"

namespace sep2p {
namespace {

using obs::Event;
using obs::EventKind;
using obs::Trace;
using obs::TraceRecorder;

// ------------------------------------------- tiny strict JSON parser
// Just enough to assert "the Chrome export is valid JSON" without a
// JSON dependency: recursive descent over the full grammar, no repairs.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek('}')) { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek(']')) { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// A synthetic trace touching every event kind and every field,
// including detail strings that need JSON escaping.
Trace MakeKitchenSinkTrace() {
  TraceRecorder rec;
  uint64_t clock = 0;
  rec.BindClock(&clock);
  rec.meta().node_count = 16;
  rec.meta().max_attempts = 5;

  const uint64_t outer = rec.OpenSpan(1, "selection");
  Event e;
  e.t_us = 5;
  e.kind = EventKind::kRpcBegin;
  e.node = 1;
  e.peer = 2;
  e.rpc = 7;
  rec.Record(e);
  e = Event{};
  e.t_us = 5;
  e.kind = EventKind::kAttempt;
  e.rpc = 7;
  e.value = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 5;
  e.kind = EventKind::kSend;
  e.node = 1;
  e.peer = 2;
  e.rpc = 7;
  e.seq = 3;
  e.value = 96;
  rec.Record(e);
  e = Event{};
  e.t_us = 9;
  e.kind = EventKind::kDrop;
  e.node = 2;
  e.peer = 1;
  e.rpc = 7;
  e.seq = 3;
  rec.Record(e);
  e = Event{};
  e.t_us = 40;
  e.kind = EventKind::kTimeout;
  e.rpc = 7;
  e.value = 1;
  rec.Record(e);
  e = Event{};
  e.t_us = 40;
  e.kind = EventKind::kRetry;
  e.rpc = 7;
  e.value = 2;
  rec.Record(e);
  e = Event{};
  e.t_us = 41;
  e.kind = EventKind::kDeliver;
  e.node = 2;
  e.peer = 1;
  e.rpc = 7;
  e.seq = 4;
  rec.Record(e);
  e = Event{};
  e.t_us = 60;
  e.kind = EventKind::kRpcEnd;
  e.rpc = 7;
  e.value = 2;
  rec.Record(e);
  e = Event{};
  e.t_us = 61;
  e.kind = EventKind::kRoute;
  e.node = 1;
  e.peer = 9;
  e.seq = 4;  // hops
  e.value = 12;
  rec.Record(e);
  e = Event{};
  e.t_us = 62;
  e.kind = EventKind::kCrash;
  e.node = 9;
  rec.Record(e);
  e = Event{};
  e.t_us = 63;
  e.kind = EventKind::kDispatch;
  e.node = 4;
  e.value = 2;
  rec.Record(e);
  clock = 70;
  rec.Signature(3, "sl-attest");
  rec.Mark(1, "label \"quoted\" \\ backslash", 42);
  const uint64_t inner = rec.OpenSpan(1, "sl-engage");
  clock = 80;
  rec.CloseSpan(inner);
  e = Event{};
  e.t_us = 81;
  e.kind = EventKind::kRpcBegin;
  e.node = 1;
  e.peer = 3;
  e.rpc = 8;
  rec.Record(e);
  e = Event{};
  e.t_us = 82;
  e.kind = EventKind::kRpcFail;
  e.rpc = 8;
  rec.Record(e);
  clock = 90;
  rec.CloseSpan(outer);
  return rec.trace();
}

TEST(JsonlTest, RoundTripIsByteIdentical) {
  const Trace trace = MakeKitchenSinkTrace();
  const std::string jsonl = obs::ToJsonl(trace);

  auto loaded = obs::FromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, trace.meta);
  ASSERT_EQ(loaded->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(loaded->events[i], trace.events[i]) << "event " << i;
  }
  EXPECT_EQ(obs::ToJsonl(*loaded), jsonl);
}

TEST(JsonlTest, LiveSweepTraceRoundTripsByteIdentical) {
  sim::Parameters params;
  params.n = 800;
  params.actor_count = 8;
  params.cache_size = 128;
  std::vector<sim::MessageFailureSetting> settings(1);
  settings[0].drop_probability = 0.05;
  settings[0].jitter_mean_us = 10'000;

  std::vector<obs::TraceRecorder> recorders;
  sim::SweepObservers observers;
  observers.recorders = &recorders;
  auto points = sim::RunMessageFailureSweep(params, settings, /*trials=*/2,
                                            /*max_attempts=*/25, &observers);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(recorders.size(), 1u);
  ASSERT_GT(recorders[0].size(), 0u);

  const std::string jsonl = obs::ToJsonl(recorders[0].trace());
  auto loaded = obs::FromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, recorders[0].trace().meta);
  EXPECT_EQ(loaded->events, recorders[0].trace().events);
  EXPECT_EQ(obs::ToJsonl(*loaded), jsonl);
}

TEST(JsonlTest, StrictLoaderRejectsEveryDeviation) {
  const std::string good = obs::ToJsonl(MakeKitchenSinkTrace());
  ASSERT_TRUE(obs::FromJsonl(good).ok());

  // Missing header.
  const size_t first_newline = good.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_FALSE(obs::FromJsonl(good.substr(first_newline + 1)).ok());

  // Foreign header.
  EXPECT_FALSE(
      obs::FromJsonl("{\"other_trace\":1,\"node_count\":4,"
                     "\"max_attempts\":3}\n")
          .ok());

  // Unsupported version.
  EXPECT_FALSE(
      obs::FromJsonl("{\"sep2p_trace\":2,\"node_count\":4,"
                     "\"max_attempts\":3}\n")
          .ok());

  const std::string header =
      "{\"sep2p_trace\":1,\"node_count\":4,\"max_attempts\":3}\n";
  // Unknown event key.
  EXPECT_FALSE(
      obs::FromJsonl(header + "{\"t\":1,\"k\":\"send\",\"bogus\":2}\n").ok());
  // Unknown event kind.
  EXPECT_FALSE(
      obs::FromJsonl(header + "{\"t\":1,\"k\":\"teleport\"}\n").ok());
  // Malformed syntax.
  EXPECT_FALSE(obs::FromJsonl(header + "{\"t\":1,\"k\":\"send\"\n").ok());
  EXPECT_FALSE(obs::FromJsonl(header + "not json at all\n").ok());
}

TEST(ChromeTraceTest, IsValidJsonAndPairsEverySpan) {
  const Trace trace = MakeKitchenSinkTrace();
  const std::string chrome = obs::ToChromeTrace(trace);

  JsonValidator validator(chrome);
  EXPECT_TRUE(validator.Valid()) << chrome;
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);

  // Every span open has a matching close; each such pair becomes one
  // "X" complete event, as does every routing leg (it has a duration).
  size_t begins = 0, ends = 0, routes = 0;
  for (const Event& e : trace.events) {
    if (e.kind == EventKind::kSpanBegin) ++begins;
    if (e.kind == EventKind::kSpanEnd) ++ends;
    if (e.kind == EventKind::kRoute) ++routes;
  }
  EXPECT_EQ(begins, ends);
  size_t complete_events = 0;
  for (size_t pos = chrome.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = chrome.find("\"ph\":\"X\"", pos + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, begins + routes);
}

TEST(ChromeTraceTest, LiveTraceExportIsValidJson) {
  sim::Parameters params;
  params.n = 800;
  params.actor_count = 8;
  params.cache_size = 128;
  std::vector<sim::MessageFailureSetting> settings(1);
  settings[0].drop_probability = 0.05;
  settings[0].jitter_mean_us = 10'000;

  std::vector<obs::TraceRecorder> recorders;
  sim::SweepObservers observers;
  observers.recorders = &recorders;
  auto points = sim::RunMessageFailureSweep(params, settings, /*trials=*/1,
                                            /*max_attempts=*/25, &observers);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(recorders.size(), 1u);

  const std::string chrome = obs::ToChromeTrace(recorders[0].trace());
  JsonValidator validator(chrome);
  EXPECT_TRUE(validator.Valid());

  size_t begins = 0, ends = 0;
  for (const Event& e : recorders[0].trace().events) {
    if (e.kind == EventKind::kSpanBegin) ++begins;
    if (e.kind == EventKind::kSpanEnd) ++ends;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

}  // namespace
}  // namespace sep2p
