#include "apps/query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(1200, 0.01, /*cache=*/160);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    // Pilots (i % 5 == 0) in their forties (i % 3 == 0) have a known
    // number of sick-leave days: i % 10.
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 5 == 0) pdms_[i].AddConcept("pilot");
      if (i % 3 == 0) pdms_[i].AddConcept("age:40s");
      pdms_[i].SetAttribute("sick_leave_days", i % 10);
    }
    index_ = std::make_unique<ConceptIndex>(network_.get());
    DiffusionApp publish_helper(network_.get(), &pdms_, index_.get());
    util::Rng rng(5);
    ASSERT_TRUE(publish_helper.PublishAllProfiles(rng).ok());
    app_ = std::make_unique<QueryApp>(network_.get(), &pdms_, index_.get());
  }

  double ExpectedAverage() {
    double sum = 0;
    int count = 0;
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 15 == 0) {
        sum += i % 10;
        ++count;
      }
    }
    return sum / count;
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<ConceptIndex> index_;
  std::unique_ptr<QueryApp> app_;
  util::Rng rng_{23};
};

TEST_F(QueryTest, AverageOverProfiledSubset) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  spec.aggregate = Aggregate::kAvg;
  auto result = app_->Execute(/*querier=*/2, spec, rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->contributors, 80u);  // 1200 / 15
  EXPECT_NEAR(result->value, ExpectedAverage(), 1e-9);
}

TEST_F(QueryTest, CountSumMinMax) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";

  spec.aggregate = Aggregate::kCount;
  auto count = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->value, 80.0);

  spec.aggregate = Aggregate::kSum;
  auto sum = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->value, ExpectedAverage() * 80, 1e-9);

  spec.aggregate = Aggregate::kMin;
  auto min = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(min.ok());
  EXPECT_DOUBLE_EQ(min->value, 0.0);

  spec.aggregate = Aggregate::kMax;
  auto max = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(max.ok());
  // Multiples of 15 mod 10 cycle {0,5}: max is 5.
  EXPECT_DOUBLE_EQ(max->value, 5.0);
}

TEST_F(QueryTest, EmptyTargetSetYieldsZero) {
  QuerySpec spec;
  spec.profile_expression = "astronaut";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->contributors, 0u);
  EXPECT_DOUBLE_EQ(result->value, 0.0);
}

TEST_F(QueryTest, MissingAttributeSkipsContributor) {
  // Re-create one known target (node 15) without the attribute.
  pdms_[15] = node::PdmsNode(15);
  pdms_[15].AddConcept("pilot");
  pdms_[15].AddConcept("age:40s");
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->contributors, 79u);
}

TEST_F(QueryTest, KnowledgeSeparationBetweenDasAndProxies) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());

  // DAs saw exactly the contributed values — but the trace carries no
  // sender identities; proxies saw the senders but no values.
  EXPECT_EQ(result->values_seen_by_da.size(), result->contributors);
  EXPECT_EQ(result->senders_seen_by_proxies.size(), result->contributors);
  std::vector<uint32_t> senders = result->senders_seen_by_proxies;
  std::sort(senders.begin(), senders.end());
  for (uint32_t sender : senders) {
    EXPECT_EQ(sender % 15, 0u);  // the actual targets
  }
}

TEST_F(QueryTest, AggregatorsChangePerQuery) {
  QuerySpec spec;
  spec.profile_expression = "pilot";
  spec.attribute = "sick_leave_days";
  auto a = app_->Execute(2, spec, rng_);
  auto b = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->aggregators, b->aggregators);
}

}  // namespace
}  // namespace sep2p::apps
