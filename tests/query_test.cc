#include "apps/query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace sep2p::apps {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(1200, 0.01, /*cache=*/160);
    ASSERT_NE(network_, nullptr);
    for (uint32_t i = 0; i < network_->directory().size(); ++i) {
      pdms_.emplace_back(i);
    }
    // Pilots (i % 5 == 0) in their forties (i % 3 == 0) have a known
    // number of sick-leave days: i % 10.
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 5 == 0) pdms_[i].AddConcept("pilot");
      if (i % 3 == 0) pdms_[i].AddConcept("age:40s");
      pdms_[i].SetAttribute("sick_leave_days", i % 10);
    }
    simnet_ = std::make_unique<net::SimNetwork>(
        test::MakeZeroFaultSimNet(1200));
    runtime_ = std::make_unique<node::AppRuntime>(simnet_.get());
    index_ = std::make_unique<ConceptIndex>(network_.get(), runtime_.get());
    DiffusionApp publish_helper(network_.get(), &pdms_, index_.get(),
                                runtime_.get());
    util::Rng rng(5);
    ASSERT_TRUE(publish_helper.PublishAllProfiles(rng).ok());
    app_ = std::make_unique<QueryApp>(network_.get(), &pdms_, index_.get(),
                                      runtime_.get());
  }

  double ExpectedAverage() {
    double sum = 0;
    int count = 0;
    for (uint32_t i = 0; i < pdms_.size(); ++i) {
      if (i % 15 == 0) {
        sum += i % 10;
        ++count;
      }
    }
    return sum / count;
  }

  std::unique_ptr<sim::Network> network_;
  std::vector<node::PdmsNode> pdms_;
  std::unique_ptr<net::SimNetwork> simnet_;
  std::unique_ptr<node::AppRuntime> runtime_;
  std::unique_ptr<ConceptIndex> index_;
  std::unique_ptr<QueryApp> app_;
  util::Rng rng_{23};
};

TEST_F(QueryTest, AverageOverProfiledSubset) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  spec.aggregate = Aggregate::kAvg;
  auto result = app_->Execute(/*querier=*/2, spec, rng_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->contributors, 80u);  // 1200 / 15
  EXPECT_NEAR(result->value, ExpectedAverage(), 1e-9);
}

TEST_F(QueryTest, CountSumMinMax) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";

  spec.aggregate = Aggregate::kCount;
  auto count = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->value, 80.0);

  spec.aggregate = Aggregate::kSum;
  auto sum = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum->value, ExpectedAverage() * 80, 1e-9);

  spec.aggregate = Aggregate::kMin;
  auto min = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(min.ok());
  EXPECT_DOUBLE_EQ(min->value, 0.0);

  spec.aggregate = Aggregate::kMax;
  auto max = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(max.ok());
  // Multiples of 15 mod 10 cycle {0,5}: max is 5.
  EXPECT_DOUBLE_EQ(max->value, 5.0);
}

TEST_F(QueryTest, EmptyTargetSetYieldsZero) {
  QuerySpec spec;
  spec.profile_expression = "astronaut";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->contributors, 0u);
  EXPECT_DOUBLE_EQ(result->value, 0.0);
}

TEST_F(QueryTest, MissingAttributeSkipsContributor) {
  // Re-create one known target (node 15) without the attribute.
  pdms_[15] = node::PdmsNode(15);
  pdms_[15].AddConcept("pilot");
  pdms_[15].AddConcept("age:40s");
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->contributors, 79u);
}

TEST_F(QueryTest, KnowledgeSeparationBetweenDasAndProxies) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());

  // DAs saw exactly the contributed values — but the trace carries no
  // sender identities; proxies saw the senders but no values.
  EXPECT_EQ(result->values_seen_by_da.size(), result->contributors);
  EXPECT_EQ(result->senders_seen_by_proxies.size(), result->contributors);
  std::vector<uint32_t> senders = result->senders_seen_by_proxies;
  std::sort(senders.begin(), senders.end());
  for (uint32_t sender : senders) {
    EXPECT_EQ(sender % 15, 0u);  // the actual targets
  }
}

TEST_F(QueryTest, FaultFreeQueryDeliversAnswerWithoutDegradation) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer_delivered);
  EXPECT_EQ(result->da_failovers, 0);
  EXPECT_EQ(result->lost_contributions, 0);
  EXPECT_EQ(result->selection_restarts, 0);
  EXPECT_EQ(result->target_finding_restarts, 0);
  EXPECT_GT(result->round_latency_us, 0u);
}

TEST_F(QueryTest, CrashedAggregatorIsReplacedByFailover) {
  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";

  // Build an identical stack twice (same seeds everywhere); the second
  // run crashes one DA right after the selection completes, so the
  // selection trace is bit-identical and only the aggregation phase has
  // to route around the corpse.
  auto run = [&](std::optional<uint32_t> crash_node, uint64_t crash_at_us)
      -> Result<QueryApp::QueryResult> {
    net::SimNetwork simnet = test::MakeZeroFaultSimNet(1200);
    if (crash_node.has_value()) simnet.CrashAt(*crash_node, crash_at_us);
    node::AppRuntime runtime(&simnet);
    ConceptIndex index(network_.get(), &runtime);
    DiffusionApp publisher(network_.get(), &pdms_, &index, &runtime);
    util::Rng publish_rng(5);
    auto published = publisher.PublishAllProfiles(publish_rng);
    if (!published.ok()) return published.status();
    QueryApp app(network_.get(), &pdms_, &index, &runtime,
                 QueryApp::Config{});
    util::Rng rng(23);
    return app.Execute(2, spec, rng);
  };

  auto baseline = run(std::nullopt, 0);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->aggregators.size(), 1u);
  EXPECT_EQ(baseline->da_failovers, 0);

  // Kill a non-MDA aggregator the microsecond after it was selected.
  auto crashed = run(baseline->aggregators[1],
                     baseline->selection_done_us + 1);
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  EXPECT_EQ(crashed->aggregators, baseline->aggregators);  // same trace
  EXPECT_GT(crashed->da_failovers, 0);
  EXPECT_EQ(crashed->lost_contributions, 0);  // spares absorbed it all
  EXPECT_EQ(crashed->contributors, baseline->contributors);
  EXPECT_NEAR(crashed->value, baseline->value, 1e-9);
}

TEST_F(QueryTest, RetriesNeverCountAContributionTwice) {
  // Lossy transport forcing retransmissions and proxy re-picks: the
  // round-global dedup on contribution ids must keep every contribution
  // counted at most once, and the knowledge-separation traces bounded by
  // the true target population (80 nodes match pilot AND age:40s).
  net::SimNetwork lossy = test::MakeSimNet(1200, /*drop=*/0.15,
                                           /*jitter_mean_us=*/0, /*seed=*/3);
  node::AppRuntime runtime(&lossy);
  ConceptIndex index(network_.get(), &runtime);
  DiffusionApp publisher(network_.get(), &pdms_, &index, &runtime);
  util::Rng publish_rng(5);
  ASSERT_TRUE(publisher.PublishAllProfiles(publish_rng).ok());
  QueryApp app(network_.get(), &pdms_, &index, &runtime, QueryApp::Config{});
  util::Rng rng(23);

  QuerySpec spec;
  spec.profile_expression = "pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  auto result = app.Execute(2, spec, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(lossy.stats().retries, 0u);  // dedup actually exercised

  EXPECT_LE(result->contributors, 80u);
  EXPECT_LE(result->values_seen_by_da.size(), 80u);  // no double count
  EXPECT_GE(result->values_seen_by_da.size(), result->contributors);
  // Proxies saw only genuine targets, values never rode with them.
  for (uint32_t sender : result->senders_seen_by_proxies) {
    EXPECT_EQ(sender % 15, 0u);
  }
  if (result->contributors > 0) {
    // Whatever survived still averages inside the attribute's range.
    EXPECT_GE(result->value, 0.0);
    EXPECT_LE(result->value, 9.0);
  }
}

TEST_F(QueryTest, AggregatorsChangePerQuery) {
  QuerySpec spec;
  spec.profile_expression = "pilot";
  spec.attribute = "sick_leave_days";
  auto a = app_->Execute(2, spec, rng_);
  auto b = app_->Execute(2, spec, rng_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->aggregators, b->aggregators);
}

}  // namespace
}  // namespace sep2p::apps
