#include "core/rate_limiter.h"

#include <gtest/gtest.h>

namespace sep2p::core {
namespace {

dht::NodeId Id(const std::string& name) { return dht::NodeId::Of(name); }

TEST(RateLimiterTest, AllowsUpToQuota) {
  TriggerRateLimiter limiter(/*max_triggers=*/3, /*window=*/100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limiter.Allow(Id("t"), 10 + i).ok()) << i;
  }
  EXPECT_FALSE(limiter.Allow(Id("t"), 13).ok());
}

TEST(RateLimiterTest, DeniedWithPermissionDenied) {
  TriggerRateLimiter limiter(1, 100);
  EXPECT_TRUE(limiter.Allow(Id("t"), 0).ok());
  Status denied = limiter.Allow(Id("t"), 1);
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied);
}

TEST(RateLimiterTest, WindowSlides) {
  TriggerRateLimiter limiter(2, 100);
  EXPECT_TRUE(limiter.Allow(Id("t"), 0).ok());
  EXPECT_TRUE(limiter.Allow(Id("t"), 50).ok());
  EXPECT_FALSE(limiter.Allow(Id("t"), 99).ok());
  // At t=100 the first attempt (t=0) leaves the window.
  EXPECT_TRUE(limiter.Allow(Id("t"), 100).ok());
  EXPECT_FALSE(limiter.Allow(Id("t"), 101).ok());
}

TEST(RateLimiterTest, TriggersAreIndependent) {
  TriggerRateLimiter limiter(1, 100);
  EXPECT_TRUE(limiter.Allow(Id("a"), 0).ok());
  EXPECT_TRUE(limiter.Allow(Id("b"), 0).ok());
  EXPECT_FALSE(limiter.Allow(Id("a"), 1).ok());
  EXPECT_FALSE(limiter.Allow(Id("b"), 1).ok());
}

TEST(RateLimiterTest, PendingCountReflectsWindow) {
  TriggerRateLimiter limiter(10, 100);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 0), 0);
  limiter.Allow(Id("t"), 0);
  limiter.Allow(Id("t"), 10);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 20), 2);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 105), 1);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 200), 0);
}

// Regression: entries used to stay in the history map forever once
// created, so a long-lived monitor seeing a stream of distinct
// (departed or Sybil) trigger ids grew without bound.
TEST(RateLimiterTest, DrainedTriggersAreForgotten) {
  TriggerRateLimiter limiter(2, /*window=*/100);
  limiter.Allow(Id("t"), 0);
  EXPECT_EQ(limiter.TrackedTriggers(), 1u);
  // Probing after the window drained both answers 0 and erases the entry.
  EXPECT_EQ(limiter.PendingCount(Id("t"), 500), 0);
  EXPECT_EQ(limiter.TrackedTriggers(), 0u);
}

TEST(RateLimiterTest, SybilStreamDoesNotGrowUnboundedly) {
  TriggerRateLimiter limiter(2, /*window=*/100);
  // 10k one-shot trigger ids spread over time: the amortized sweep in
  // Allow must keep only the ids still inside the current window.
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(limiter.Allow(Id("sybil-" + std::to_string(i)),
                              static_cast<uint64_t>(i))
                    .ok());
  }
  // Triggers older than one window (ids 0..9899 at t=9999) are gone.
  EXPECT_LE(limiter.TrackedTriggers(), 200u);
  // And quotas still enforce for live triggers.
  EXPECT_TRUE(limiter.Allow(Id("sybil-9999"), 9999).ok());
  EXPECT_FALSE(limiter.Allow(Id("sybil-9999"), 9999).ok());
}

TEST(RateLimiterTest, ZeroQuotaLeavesNoEntryBehind) {
  TriggerRateLimiter limiter(/*max_triggers=*/0, /*window=*/100);
  EXPECT_EQ(limiter.Allow(Id("t"), 5).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(limiter.TrackedTriggers(), 0u);
}

TEST(RateLimiterTest, ShoppingForActorListsIsBlocked) {
  // The attack §3.6 prevents: regenerate actor lists until a favorable
  // one appears. With a quota of q per window, at most q lists exist.
  TriggerRateLimiter limiter(5, 1000);
  int successes = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (limiter.Allow(Id("attacker"), attempt).ok()) ++successes;
  }
  EXPECT_EQ(successes, 5);
}

}  // namespace
}  // namespace sep2p::core
