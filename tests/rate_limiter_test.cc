#include "core/rate_limiter.h"

#include <gtest/gtest.h>

namespace sep2p::core {
namespace {

dht::NodeId Id(const std::string& name) { return dht::NodeId::Of(name); }

TEST(RateLimiterTest, AllowsUpToQuota) {
  TriggerRateLimiter limiter(/*max_triggers=*/3, /*window=*/100);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limiter.Allow(Id("t"), 10 + i).ok()) << i;
  }
  EXPECT_FALSE(limiter.Allow(Id("t"), 13).ok());
}

TEST(RateLimiterTest, DeniedWithPermissionDenied) {
  TriggerRateLimiter limiter(1, 100);
  EXPECT_TRUE(limiter.Allow(Id("t"), 0).ok());
  Status denied = limiter.Allow(Id("t"), 1);
  EXPECT_EQ(denied.code(), StatusCode::kPermissionDenied);
}

TEST(RateLimiterTest, WindowSlides) {
  TriggerRateLimiter limiter(2, 100);
  EXPECT_TRUE(limiter.Allow(Id("t"), 0).ok());
  EXPECT_TRUE(limiter.Allow(Id("t"), 50).ok());
  EXPECT_FALSE(limiter.Allow(Id("t"), 99).ok());
  // At t=100 the first attempt (t=0) leaves the window.
  EXPECT_TRUE(limiter.Allow(Id("t"), 100).ok());
  EXPECT_FALSE(limiter.Allow(Id("t"), 101).ok());
}

TEST(RateLimiterTest, TriggersAreIndependent) {
  TriggerRateLimiter limiter(1, 100);
  EXPECT_TRUE(limiter.Allow(Id("a"), 0).ok());
  EXPECT_TRUE(limiter.Allow(Id("b"), 0).ok());
  EXPECT_FALSE(limiter.Allow(Id("a"), 1).ok());
  EXPECT_FALSE(limiter.Allow(Id("b"), 1).ok());
}

TEST(RateLimiterTest, PendingCountReflectsWindow) {
  TriggerRateLimiter limiter(10, 100);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 0), 0);
  limiter.Allow(Id("t"), 0);
  limiter.Allow(Id("t"), 10);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 20), 2);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 105), 1);
  EXPECT_EQ(limiter.PendingCount(Id("t"), 200), 0);
}

TEST(RateLimiterTest, ShoppingForActorListsIsBlocked) {
  // The attack §3.6 prevents: regenerate actor lists until a favorable
  // one appears. With a quota of q per window, at most q lists exist.
  TriggerRateLimiter limiter(5, 1000);
  int successes = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (limiter.Allow(Id("attacker"), attempt).ok()) ++successes;
  }
  EXPECT_EQ(successes, 5);
}

}  // namespace
}  // namespace sep2p::core
