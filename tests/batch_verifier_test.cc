// BatchVerifier: deferred batched verification on the sharded worker
// pool (crypto/batch_verifier.h). The multi-worker tests exercise the
// queue/drain handshake under real threads, so a TSan build of this
// file checks the pool's synchronization.

#include "crypto/batch_verifier.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "crypto/ed25519_provider.h"
#include "crypto/sim_provider.h"
#include "util/rng.h"

namespace sep2p::crypto {
namespace {

struct Signed {
  PublicKey key;
  std::vector<uint8_t> msg;
  Signature sig;
};

// `count` signed messages from `signers` distinct keys; item i is
// corrupted (one flipped signature byte) iff corrupt(i).
std::vector<Signed> MakeItems(SignatureProvider& provider, int count,
                              int signers,
                              const std::function<bool(int)>& corrupt) {
  util::Rng rng(99);
  std::vector<KeyPair> pairs;
  for (int s = 0; s < signers; ++s) {
    pairs.push_back(std::move(provider.GenerateKeyPair(rng).value()));
  }
  std::vector<Signed> items;
  items.reserve(count);
  for (int i = 0; i < count; ++i) {
    const KeyPair& pair = pairs[static_cast<size_t>(i) % pairs.size()];
    Signed item;
    item.key = pair.pub;
    item.msg = {static_cast<uint8_t>(i), static_cast<uint8_t>(i >> 8), 0x5e};
    item.sig = std::move(provider.Sign(pair.priv, item.msg).value());
    if (corrupt(i)) item.sig[0] ^= 0xff;
    items.push_back(std::move(item));
  }
  return items;
}

TEST(BatchVerifierTest, AllValidItemsYieldNoFailedTasks) {
  SimProvider provider;
  auto items = MakeItems(provider, 100, 7, [](int) { return false; });
  BatchVerifier::Options opt;
  opt.shard_count = 4;
  opt.batch_size = 8;
  opt.workers = 2;
  BatchVerifier verifier(&provider, opt);
  for (int i = 0; i < 100; ++i) {
    verifier.BeginTask(static_cast<uint64_t>(i / 10));
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
  }
  verifier.Drain();
  EXPECT_TRUE(verifier.failed_tasks().empty());
  EXPECT_EQ(verifier.stats().items, 100u);
  EXPECT_EQ(verifier.stats().failed_items, 0u);
  EXPECT_GE(verifier.stats().batches, 100u / 8u);
  EXPECT_LE(verifier.stats().max_batch, 8u);
  EXPECT_EQ(verifier.pending(), 0u);
}

TEST(BatchVerifierTest, CorruptItemsFailExactlyTheirTasks) {
  SimProvider provider;
  // Items 17 and 53 are corrupted; with 10 items per task, tasks 1 and
  // 5 must fail and no others.
  auto items = MakeItems(provider, 100, 5,
                         [](int i) { return i == 17 || i == 53; });
  BatchVerifier::Options opt;
  opt.shard_count = 8;
  opt.batch_size = 16;
  opt.workers = 3;
  BatchVerifier verifier(&provider, opt);
  for (int i = 0; i < 100; ++i) {
    verifier.BeginTask(static_cast<uint64_t>(i / 10));
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
  }
  verifier.Drain();
  EXPECT_EQ(verifier.failed_tasks(), (std::set<uint64_t>{1, 5}));
  EXPECT_TRUE(verifier.TaskFailed(1));
  EXPECT_TRUE(verifier.TaskFailed(5));
  EXPECT_FALSE(verifier.TaskFailed(0));
  EXPECT_EQ(verifier.stats().failed_items, 2u);
}

TEST(BatchVerifierTest, VerdictsAndStatsAreWorkerCountInvariant) {
  SimProvider provider;
  auto items = MakeItems(provider, 257, 11,
                         [](int i) { return i % 41 == 0; });
  auto run = [&](int workers) {
    BatchVerifier::Options opt;
    opt.shard_count = 16;
    opt.batch_size = 32;
    opt.workers = workers;
    BatchVerifier verifier(&provider, opt);
    for (size_t i = 0; i < items.size(); ++i) {
      verifier.BeginTask(i / 7);
      verifier.Defer(items[i].key, items[i].msg, items[i].sig);
    }
    verifier.Drain();
    return std::make_pair(verifier.failed_tasks(), verifier.stats());
  };
  // workers=0 verifies inline on the caller: the reference verdict.
  auto [ref_failed, ref_stats] = run(0);
  EXPECT_FALSE(ref_failed.empty());
  for (int workers : {1, 4, 8}) {
    auto [failed, stats] = run(workers);
    EXPECT_EQ(failed, ref_failed) << "workers=" << workers;
    EXPECT_EQ(stats.items, ref_stats.items) << "workers=" << workers;
    EXPECT_EQ(stats.batches, ref_stats.batches) << "workers=" << workers;
    EXPECT_EQ(stats.failed_items, ref_stats.failed_items)
        << "workers=" << workers;
    EXPECT_EQ(stats.max_batch, ref_stats.max_batch)
        << "workers=" << workers;
    EXPECT_EQ(stats.coalesced, ref_stats.coalesced)
        << "workers=" << workers;
  }
}

TEST(BatchVerifierTest, DuplicateTriplesCoalesceIntoOneVerification) {
  // SEP2P's duplication pattern: every party an actor list is disclosed
  // to verifies the SAME k certificates + k signatures. Here ten tasks
  // each defer the same eight triples (one corrupt): the provider must
  // see each unique triple once, and the corrupt triple must fail every
  // subscriber.
  SimProvider provider;
  auto items = MakeItems(provider, 8, 4, [](int i) { return i == 3; });
  BatchVerifier::Options opt;
  opt.shard_count = 4;
  opt.batch_size = 4;
  opt.workers = 2;
  BatchVerifier verifier(&provider, opt);
  const uint64_t before = provider.meter().verifies();
  for (uint64_t task = 0; task < 10; ++task) {
    verifier.BeginTask(task);
    for (const Signed& item : items) {
      verifier.Defer(item.key, item.msg, item.sig);
    }
  }
  verifier.Drain();
  EXPECT_EQ(verifier.failed_tasks().size(), 10u);
  EXPECT_EQ(verifier.stats().items, 80u);
  EXPECT_EQ(verifier.stats().coalesced, 72u);
  EXPECT_EQ(verifier.stats().failed_items, 1u);  // one unique false verdict
  EXPECT_EQ(provider.meter().verifies() - before, 8u);

  // A later drain cycle hits the verdict cache: no new provider calls,
  // and the cached false verdict still fails the new subscriber.
  verifier.BeginTask(77);
  verifier.Defer(items[3].key, items[3].msg, items[3].sig);
  verifier.Defer(items[0].key, items[0].msg, items[0].sig);
  verifier.Drain();
  EXPECT_TRUE(verifier.TaskFailed(77));
  EXPECT_EQ(provider.meter().verifies() - before, 8u);
  EXPECT_EQ(verifier.stats().coalesced, 74u);
  EXPECT_EQ(verifier.stats().failed_items, 1u);
}

TEST(BatchVerifierTest, ReusableAcrossDrainCycles) {
  SimProvider provider;
  auto items = MakeItems(provider, 40, 3, [](int i) { return i == 25; });
  BatchVerifier::Options opt;
  opt.shard_count = 4;
  opt.batch_size = 6;
  opt.workers = 2;
  BatchVerifier verifier(&provider, opt);
  // Cycle 1: the first 20 items, all valid.
  for (int i = 0; i < 20; ++i) {
    verifier.BeginTask(static_cast<uint64_t>(i));
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
  }
  verifier.Drain();
  EXPECT_TRUE(verifier.failed_tasks().empty());
  EXPECT_EQ(verifier.stats().items, 20u);
  // Cycle 2: the rest; item 25 is corrupt, so task 25 fails. The
  // verdict set accumulates across drains.
  for (int i = 20; i < 40; ++i) {
    verifier.BeginTask(static_cast<uint64_t>(i));
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
  }
  verifier.Drain();
  EXPECT_EQ(verifier.failed_tasks(), (std::set<uint64_t>{25}));
  EXPECT_EQ(verifier.stats().items, 40u);
}

// Both providers must agree with their own single-call Verify on every
// batch verdict — the Ed25519 batch path (key-sorted visit order,
// cached EVP_PKEY) is exactly the code the throughput bench leans on.
template <typename Provider>
class BatchVerifierProviderTest : public ::testing::Test {};
using Providers = ::testing::Types<SimProvider, Ed25519Provider>;
TYPED_TEST_SUITE(BatchVerifierProviderTest, Providers);

TYPED_TEST(BatchVerifierProviderTest, BatchVerdictsMatchSingleVerify) {
  TypeParam provider;
  auto items = MakeItems(provider, 60, 6, [](int i) { return i % 13 == 7; });
  BatchVerifier::Options opt;
  opt.shard_count = 4;
  opt.batch_size = 16;
  opt.workers = 2;
  BatchVerifier verifier(&provider, opt);
  std::set<uint64_t> expect_failed;
  for (size_t i = 0; i < items.size(); ++i) {
    verifier.BeginTask(i);
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
    if (!provider.Verify(items[i].key, items[i].msg, items[i].sig)) {
      expect_failed.insert(i);
    }
  }
  verifier.Drain();
  EXPECT_EQ(verifier.failed_tasks(), expect_failed);
  EXPECT_FALSE(expect_failed.empty());
  EXPECT_LT(expect_failed.size(), items.size());
}

TEST(BatchVerifierTest, ManySmallDrainsUnderContention) {
  // Stress the wake/drain handshake: tiny batches, many drains, four
  // workers. TSan finds lock-ordering or lost-wakeup bugs here.
  SimProvider provider;
  auto items = MakeItems(provider, 300, 13,
                         [](int i) { return i % 97 == 0; });
  BatchVerifier::Options opt;
  opt.shard_count = 32;
  opt.batch_size = 2;
  opt.workers = 4;
  BatchVerifier verifier(&provider, opt);
  std::set<uint64_t> expect_failed;
  for (size_t i = 0; i < items.size(); ++i) {
    verifier.BeginTask(i);
    if (i % 97 == 0) expect_failed.insert(i);
    verifier.Defer(items[i].key, items[i].msg, items[i].sig);
    if (i % 11 == 0) verifier.Drain();
  }
  verifier.Drain();
  EXPECT_EQ(verifier.failed_tasks(), expect_failed);
  EXPECT_EQ(verifier.stats().items, 300u);
  EXPECT_EQ(verifier.stats().failed_items, expect_failed.size());
}

}  // namespace
}  // namespace sep2p::crypto
