#include "dht/chord.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/metrics.h"
#include "tests/test_util.h"

namespace sep2p::dht {
namespace {

TEST(ChordTest, RouteReachesOwner) {
  auto dir = test::MakeDirectory(1000);
  ChordOverlay chord(dir.get());
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    uint32_t from = rng.NextUint64(dir->size());
    RingPos target = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                     rng.NextUint64();
    auto route = chord.Route(from, target);
    ASSERT_TRUE(route.ok());
    auto owner = dir->SuccessorIndex(target);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(route->dest_index, *owner);
  }
}

TEST(ChordTest, RouteToSelfIsZeroHops) {
  auto dir = test::MakeDirectory(100);
  ChordOverlay chord(dir.get());
  for (uint32_t i = 0; i < dir->size(); i += 13) {
    auto route = chord.Route(i, dir->pos(i));
    ASSERT_TRUE(route.ok());
    EXPECT_EQ(route->dest_index, i);
    EXPECT_EQ(route->hops, 0);
  }
}

TEST(ChordTest, HopCountIsLogarithmic) {
  auto dir = test::MakeDirectory(4096);
  ChordOverlay chord(dir.get());
  util::Rng rng(2);
  sim::OnlineStats hops;
  for (int trial = 0; trial < 300; ++trial) {
    uint32_t from = rng.NextUint64(dir->size());
    RingPos target = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                     rng.NextUint64();
    auto route = chord.Route(from, target);
    ASSERT_TRUE(route.ok());
    hops.Add(route->hops);
  }
  double log2n = std::log2(4096.0);
  // Theoretical average is ~0.5 log2 N; generous envelope around it.
  EXPECT_GT(hops.mean(), 0.25 * log2n);
  EXPECT_LT(hops.mean(), 1.5 * log2n);
  EXPECT_LE(hops.max(), 2.5 * log2n);
}

TEST(ChordTest, HopsGrowSlowlyWithNetworkSize) {
  util::Rng rng(3);
  double mean_small = 0, mean_large = 0;
  for (auto [n, out] : {std::pair<size_t, double*>{256, &mean_small},
                        std::pair<size_t, double*>{8192, &mean_large}}) {
    auto dir = test::MakeDirectory(n, /*seed=*/5);
    ChordOverlay chord(dir.get());
    sim::OnlineStats hops;
    for (int trial = 0; trial < 200; ++trial) {
      uint32_t from = rng.NextUint64(dir->size());
      RingPos target = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                       rng.NextUint64();
      auto route = chord.Route(from, target);
      ASSERT_TRUE(route.ok());
      hops.Add(route->hops);
    }
    *out = hops.mean();
  }
  // 32x more nodes must cost far less than 32x more hops (log growth).
  EXPECT_LT(mean_large, mean_small * 3.0);
}

TEST(ChordTest, RoutesAroundDeadNodes) {
  auto dir = test::MakeDirectory(200);
  ChordOverlay chord(dir.get());
  util::Rng rng(4);
  // Kill a third of the network.
  for (uint32_t i = 0; i < dir->size(); i += 3) dir->SetAlive(i, false);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t from;
    do {
      from = rng.NextUint64(dir->size());
    } while (!dir->alive(from));
    RingPos target = (static_cast<RingPos>(rng.NextUint64()) << 64) |
                     rng.NextUint64();
    auto route = chord.Route(from, target);
    ASSERT_TRUE(route.ok());
    EXPECT_TRUE(dir->alive(route->dest_index));
  }
}

TEST(ChordTest, EmptyNetworkIsUnavailable) {
  auto dir = test::MakeDirectory(4);
  for (uint32_t i = 0; i < 4; ++i) dir->SetAlive(i, false);
  ChordOverlay chord(dir.get());
  EXPECT_FALSE(chord.Route(0, static_cast<RingPos>(1)).ok());
}

TEST(ChordTest, DeterministicRoutes) {
  auto dir = test::MakeDirectory(512);
  ChordOverlay chord(dir.get());
  auto r1 = chord.Route(3, static_cast<RingPos>(1) << 100);
  auto r2 = chord.Route(3, static_cast<RingPos>(1) << 100);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->dest_index, r2->dest_index);
  EXPECT_EQ(r1->hops, r2->hops);
}

}  // namespace
}  // namespace sep2p::dht
