#include "core/probability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sep2p::core {
namespace {

TEST(BinomialTailTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(BinomialTail(0, 10, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTail(-5, 10, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTail(11, 10, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTail(1, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTail(10, 10, 1.0), 1.0);
}

TEST(BinomialTailTest, SmallExactValues) {
  // X ~ Bin(3, 0.5): P(X >= 2) = 4/8 = 0.5; P(X >= 3) = 1/8.
  EXPECT_NEAR(BinomialTail(2, 3, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(BinomialTail(3, 3, 0.5), 0.125, 1e-12);
  // X ~ Bin(2, 0.1): P(X >= 1) = 1 - 0.81 = 0.19.
  EXPECT_NEAR(BinomialTail(1, 2, 0.1), 0.19, 1e-12);
}

TEST(BinomialTailTest, ComplementaryTailsSumToOne) {
  // P(X >= m) + P(X <= m-1) = 1; the lower branch of the implementation
  // computes exactly that complement.
  for (int m = 1; m <= 20; ++m) {
    double upper = BinomialTail(m, 20, 0.37);
    // Lower tail via the same function on the mirrored variable:
    // P(X <= m-1) = P(Y >= 20-m+1) with Y = 20 - X ~ Bin(20, 0.63).
    double lower = BinomialTail(20 - m + 1, 20, 0.63);
    EXPECT_NEAR(upper + lower, 1.0, 1e-10) << "m=" << m;
  }
}

TEST(BinomialTailTest, MatchesMonteCarlo) {
  util::Rng rng(123);
  const int n = 50;
  const double p = 0.08;
  const int kTrials = 200000;
  int counts[6] = {};  // P(X >= m) for m=1..5 estimated empirically
  for (int t = 0; t < kTrials; ++t) {
    int x = 0;
    for (int i = 0; i < n; ++i) x += rng.NextBool(p);
    for (int m = 1; m <= 5; ++m) {
      if (x >= m) ++counts[m];
    }
  }
  for (int m = 1; m <= 5; ++m) {
    double empirical = static_cast<double>(counts[m]) / kTrials;
    double analytic = BinomialTail(m, n, p);
    EXPECT_NEAR(empirical, analytic, 0.01) << "m=" << m;
  }
}

TEST(BinomialTailTest, StableAtPaperScale) {
  // N = 10M nodes, tiny regions: must not overflow/underflow.
  double p1 = PL(6, 10000000, 1e-6);
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p1, 1.0);
  double p2 = PC(6, 100000, 1e-8);
  EXPECT_GE(p2, 0.0);
  EXPECT_LT(p2, 1e-6);
}

TEST(BinomialTailTest, MonotoneInRegionSize) {
  double prev = 0;
  for (double rs : {1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    double p = PC(4, 1000, rs);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(BinomialTailTest, MonotoneInThreshold) {
  double prev = 1.0;
  for (int k = 1; k <= 10; ++k) {
    double p = PC(k, 1000, 1e-4);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(SolveRegionSizeTest, SolutionSatisfiesConstraintTightly) {
  for (uint64_t c : {10ull, 1000ull, 100000ull}) {
    for (int k : {2, 3, 5, 8}) {
      double rs = SolveRegionSizeForK(k, c, 1e-6);
      EXPECT_LE(PC(k, c, rs), 1e-6 * 1.01) << "k=" << k << " c=" << c;
      // Tight: doubling the region must violate the constraint (unless
      // the solution saturated at the full ring).
      if (rs < 0.5) {
        EXPECT_GT(PC(k, c, rs * 2), 1e-6) << "k=" << k << " c=" << c;
      }
    }
  }
}

TEST(SolveRegionSizeTest, KAboveCIsFullRing) {
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(2, 1, 1e-6), 1.0);
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(11, 10, 1e-10), 1.0);
}

TEST(SolveRegionSizeTest, DegenerateConstraintsReturnExactLimits) {
  // k <= 0: every region (even an empty one) holds >= 0 colluders, so
  // no positive rs satisfies PC <= alpha < 1. Used to return the
  // bisection grid floor 1e-20; must be exactly 0.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(0, 100, 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(-3, 100, 1e-6), 0.0);
  // alpha <= 0 with k <= c: PC > 0 for every rs > 0.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(5, 100, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(5, 100, -1.0), 0.0);
  // ...but alpha <= 0 with k > c stays attainable on the full ring.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(101, 100, 0.0), 1.0);
  // alpha >= 1 admits everything.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForK(5, 100, 1.0), 1.0);
}

TEST(SolveRegionSizeTest, AlphaHitExactlyKeepsLargestSatisfyingRegion) {
  // Pick an rs* on the bisection's own grid and use PC(rs*) as alpha:
  // the solver must treat "== alpha" as satisfying (<=) and return a
  // region at least as large as rs*.
  const double rs_star = SolveRegionSizeForK(4, 1000, 1e-6);
  const double alpha = PC(4, 1000, rs_star);
  const double rs = SolveRegionSizeForK(4, 1000, alpha);
  EXPECT_GE(rs, rs_star * (1 - 1e-9));
  EXPECT_LE(PC(4, 1000, rs), alpha * (1 + 1e-12));
}

TEST(SolveRegionSizeTest, LargerKAllowsLargerRegion) {
  double prev = 0;
  for (int k = 2; k <= 8; ++k) {
    double rs = SolveRegionSizeForK(k, 1000, 1e-6);
    EXPECT_GT(rs, prev) << "k=" << k;
    prev = rs;
  }
}

TEST(SolveRegionSizeForPopulationTest, SolutionHoldsPopulation) {
  for (uint64_t n : {10000ull, 1000000ull}) {
    for (int m : {1, 8, 32}) {
      double rs = SolveRegionSizeForPopulation(m, n, 1e-6);
      EXPECT_GE(PL(m, n, rs), 1.0 - 1e-6 * 1.01);
      // Near-tight from below.
      EXPECT_LT(PL(m, n, rs / 4), 1.0 - 1e-6);
    }
  }
}

TEST(SolveRegionSizeForPopulationTest, DegenerateConstraintsExactLimits) {
  // m <= 0 nodes are found in any region: exact limit 0.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForPopulation(0, 1000, 1e-6), 0.0);
  EXPECT_DOUBLE_EQ(SolveRegionSizeForPopulation(-1, 1000, 1e-6), 0.0);
  // alpha >= 1 demands nothing.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForPopulation(5, 1000, 1.0), 0.0);
  // m > n can't be met even by the full ring: documented fallback 1.0.
  EXPECT_DOUBLE_EQ(SolveRegionSizeForPopulation(1001, 1000, 1e-6), 1.0);
}

TEST(SolveRegionSizeForPopulationTest, ToleranceScalesInverselyWithN) {
  double rs_small = SolveRegionSizeForPopulation(1, 10000, 1e-6);
  double rs_large = SolveRegionSizeForPopulation(1, 1000000, 1e-6);
  EXPECT_NEAR(rs_small / rs_large, 100.0, 10.0);
}

TEST(LogBinomialCoefficientTest, MatchesExactValues) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomialCoefficient(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 10), 0.0, 1e-9);
  EXPECT_EQ(LogBinomialCoefficient(3, 5), -INFINITY);
}

}  // namespace
}  // namespace sep2p::core
