#include "util/hex.h"

#include <gtest/gtest.h>

namespace sep2p::util {
namespace {

TEST(HexTest, EncodesLowercase) {
  std::vector<uint8_t> data{0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(ToHex(data), "00deadbeefff");
}

TEST(HexTest, EmptyInput) {
  EXPECT_EQ(ToHex(std::vector<uint8_t>{}), "");
  auto decoded = FromHex("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(HexTest, RoundTrip) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<uint8_t>(i));
  auto decoded = FromHex(ToHex(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(HexTest, DecodesUppercase) {
  auto decoded = FromHex("DEADBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, RejectsOddLength) { EXPECT_FALSE(FromHex("abc").has_value()); }

TEST(HexTest, RejectsNonHexCharacters) {
  EXPECT_FALSE(FromHex("zz").has_value());
  EXPECT_FALSE(FromHex("0g").has_value());
  EXPECT_FALSE(FromHex("a ").has_value());
}

}  // namespace
}  // namespace sep2p::util
