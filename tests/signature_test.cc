// Parameterized over both signature providers: the protocol layer must be
// oblivious to which one is underneath.

#include <gtest/gtest.h>

#include <memory>

#include "crypto/ed25519_provider.h"
#include "crypto/sim_provider.h"
#include "util/rng.h"

namespace sep2p::crypto {
namespace {

class SignatureProviderTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "ed25519") {
      provider_ = std::make_unique<Ed25519Provider>();
    } else {
      provider_ = std::make_unique<SimProvider>();
    }
  }

  std::unique_ptr<SignatureProvider> provider_;
  util::Rng rng_{2024};
};

TEST_P(SignatureProviderTest, SignVerifyRoundTrip) {
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> msg{1, 2, 3, 4, 5};
  auto sig = provider_->Sign(pair->priv, msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(provider_->Verify(pair->pub, msg, *sig));
}

TEST_P(SignatureProviderTest, TamperedMessageRejected) {
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> msg{1, 2, 3, 4, 5};
  auto sig = provider_->Sign(pair->priv, msg);
  ASSERT_TRUE(sig.ok());
  msg[2] ^= 1;
  EXPECT_FALSE(provider_->Verify(pair->pub, msg, *sig));
}

TEST_P(SignatureProviderTest, TamperedSignatureRejected) {
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> msg{9, 8, 7};
  auto sig = provider_->Sign(pair->priv, msg);
  ASSERT_TRUE(sig.ok());
  Signature bad = *sig;
  bad[0] ^= 0xff;
  EXPECT_FALSE(provider_->Verify(pair->pub, msg, bad));
}

TEST_P(SignatureProviderTest, WrongKeyRejected) {
  auto pair1 = provider_->GenerateKeyPair(rng_);
  auto pair2 = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair1.ok() && pair2.ok());
  std::vector<uint8_t> msg{42};
  auto sig = provider_->Sign(pair1->priv, msg);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(provider_->Verify(pair2->pub, msg, *sig));
}

TEST_P(SignatureProviderTest, EmptyMessageSupported) {
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> empty;
  auto sig = provider_->Sign(pair->priv, empty);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(provider_->Verify(pair->pub, empty, *sig));
}

TEST_P(SignatureProviderTest, KeyGenerationIsDeterministicFromRng) {
  util::Rng a(55), b(55);
  auto p1 = provider_->GenerateKeyPair(a);
  auto p2 = provider_->GenerateKeyPair(b);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->pub, p2->pub);
}

TEST_P(SignatureProviderTest, DistinctSeedsDistinctKeys) {
  auto p1 = provider_->GenerateKeyPair(rng_);
  auto p2 = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_NE(p1->pub, p2->pub);
}

TEST_P(SignatureProviderTest, DerivePublicKeyMatchesKeyPair) {
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  auto derived = provider_->DerivePublicKey(pair->priv);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, pair->pub);
}

TEST_P(SignatureProviderTest, MeterCountsOperations) {
  provider_->meter().Reset();
  auto pair = provider_->GenerateKeyPair(rng_);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> msg{1};
  auto sig = provider_->Sign(pair->priv, msg);
  ASSERT_TRUE(sig.ok());
  provider_->Verify(pair->pub, msg, *sig);
  provider_->Verify(pair->pub, msg, *sig);
  EXPECT_EQ(provider_->meter().key_gens(), 1u);
  EXPECT_EQ(provider_->meter().signs(), 1u);
  EXPECT_EQ(provider_->meter().verifies(), 2u);
  EXPECT_EQ(provider_->meter().asym_ops(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllProviders, SignatureProviderTest,
                         ::testing::Values("ed25519", "sim"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(SimProviderTest, BadPrivateKeyRejected) {
  SimProvider provider;
  PrivateKey bad;
  bad.data = {1, 2, 3};  // wrong length
  std::vector<uint8_t> msg{1};
  EXPECT_FALSE(provider.Sign(bad, msg).ok());
  EXPECT_FALSE(provider.DerivePublicKey(bad).ok());
}

TEST(SimProviderTest, WrongLengthSignatureRejected) {
  SimProvider provider;
  util::Rng rng(1);
  auto pair = provider.GenerateKeyPair(rng);
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> msg{1};
  EXPECT_FALSE(provider.Verify(pair->pub, msg, Signature{1, 2, 3}));
}

}  // namespace
}  // namespace sep2p::crypto
