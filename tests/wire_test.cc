#include "core/wire.h"

#include <gtest/gtest.h>

#include "core/verification.h"
#include "tests/test_util.h"

namespace sep2p::core::wire {
namespace {

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/1500, /*c_fraction=*/0.01,
                                 /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
    util::Rng rng(77);

    VrandProtocol vrand(ctx_);
    auto vr = vrand.Generate(3, rng);
    ASSERT_TRUE(vr.ok());
    vrnd_ = vr->vrnd;

    SelectionProtocol selection(ctx_);
    auto run = selection.Run(3, rng);
    ASSERT_TRUE(run.ok());
    val_ = run->val;
  }

  std::unique_ptr<sim::Network> network_;
  ProtocolContext ctx_;
  VerifiableRandom vrnd_;
  VerifiableActorList val_;
};

TEST_F(WireTest, VrandRoundTripsAndStillVerifies) {
  std::vector<uint8_t> bytes = EncodeVerifiableRandom(vrnd_);
  auto decoded = DecodeVerifiableRandom(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->Value(), vrnd_.Value());
  EXPECT_EQ(decoded->timestamp, vrnd_.timestamp);
  EXPECT_EQ(decoded->k(), vrnd_.k());
  EXPECT_TRUE(VerifyVrand(ctx_, *decoded).ok());
}

TEST_F(WireTest, ActorListRoundTripsAndStillVerifies) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  auto decoded = DecodeActorList(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rnd_t, val_.rnd_t);
  EXPECT_EQ(decoded->actor_keys, val_.actor_keys);
  EXPECT_EQ(decoded->relocations, val_.relocations);
  EXPECT_EQ(decoded->attestations.size(), val_.attestations.size());
  EXPECT_TRUE(VerifyActorList(ctx_, *decoded).ok());
}

TEST_F(WireTest, EncodingIsDeterministic) {
  EXPECT_EQ(EncodeActorList(val_), EncodeActorList(val_));
  EXPECT_EQ(EncodeVerifiableRandom(vrnd_), EncodeVerifiableRandom(vrnd_));
}

TEST_F(WireTest, TruncationAtEveryPointRejected) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  // Dropping any suffix must be rejected (sampled to keep runtime sane).
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_FALSE(DecodeActorList(cut).ok()) << "kept " << keep;
  }
}

TEST_F(WireTest, TrailingGarbageRejected) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeActorList(bytes).ok());
}

TEST_F(WireTest, BadMagicAndTagRejected) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeActorList(bad_magic).ok());

  // A vrand blob is not an actor list.
  EXPECT_FALSE(DecodeActorList(EncodeVerifiableRandom(vrnd_)).ok());
  EXPECT_FALSE(DecodeVerifiableRandom(EncodeActorList(val_)).ok());
}

TEST_F(WireTest, BadVersionRejected) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  bytes[5] = 0x7f;  // version low byte
  EXPECT_FALSE(DecodeActorList(bytes).ok());
}

TEST_F(WireTest, AbsurdCountsRejectedWithoutAllocation) {
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  // The actor-count field sits after magic(4)+ver(2)+rnd(32)+ts(8)+
  // rs2(8)+relocations(4) = offset 58.
  bytes[58] = 0xff;
  bytes[59] = 0xff;
  bytes[60] = 0xff;
  bytes[61] = 0xff;
  EXPECT_FALSE(DecodeActorList(bytes).ok());
}

TEST_F(WireTest, BitFlippedPayloadFailsVerificationNotDecoding) {
  // Flips inside fixed-size fields still decode (the framing is intact)
  // but must then fail the cryptographic verification.
  std::vector<uint8_t> bytes = EncodeActorList(val_);
  bytes[10] ^= 0x01;  // inside rnd_t
  auto decoded = DecodeActorList(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(VerifyActorList(ctx_, *decoded).ok());
}

TEST_F(WireTest, RandomFuzzNeverCrashes) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> junk(rng.NextUint64(512));
    rng.FillBytes(junk.data(), junk.size());
    // Must return an error or a structurally valid object — never crash.
    auto val = DecodeActorList(junk);
    auto vrnd = DecodeVerifiableRandom(junk);
    (void)val;
    (void)vrnd;
  }
  SUCCEED();
}

TEST_F(WireTest, MutatedEncodingFuzzNeverCrashes) {
  util::Rng rng(777);
  std::vector<uint8_t> base = EncodeActorList(val_);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = base;
    int flips = 1 + rng.NextUint64(8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextUint64(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.NextUint64(255));
    }
    auto decoded = DecodeActorList(mutated);
    if (decoded.ok()) {
      // Structurally valid mutants must still never verify unless the
      // mutation was semantically neutral (it cannot be: every byte is
      // load-bearing).
      auto verified = VerifyActorList(ctx_, *decoded);
      (void)verified;
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace sep2p::core::wire
