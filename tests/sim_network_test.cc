// Deterministic discrete-event message layer (net/sim_network.h), the
// typed protocol messages riding on it (core/messages.h), and the
// selection protocol executed end-to-end over the simulated network.

#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/messages.h"
#include "core/selection.h"
#include "core/verification.h"
#include "tests/test_util.h"

namespace sep2p {
namespace {

using net::LinkModel;
using net::RetryPolicy;
using net::SimNetwork;

// A link with no jitter and no drops: every transmission takes exactly
// base_latency_us, making clock arithmetic exact.
LinkModel ExactLink() {
  LinkModel link;
  link.base_latency_us = 10'000;
  link.jitter_mean_us = 0;
  link.drop_probability = 0.0;
  link.process_us = 1'000;
  return link;
}

RetryPolicy ExactRetry() {
  RetryPolicy retry;
  retry.timeout_us = 100'000;
  retry.max_attempts = 4;
  retry.backoff_base_us = 50'000;
  retry.backoff_factor = 2.0;
  retry.jitter_fraction = 0.0;
  return retry;
}

SimNetwork::Handler Echo() {
  return [](uint32_t, const std::vector<uint8_t>& request) {
    return std::optional<std::vector<uint8_t>>(request);
  };
}

TEST(SimNetworkTest, PerfectLinkCallAdvancesExactlyOneRtt) {
  SimNetwork net(4, ExactLink(), ExactRetry(), /*seed=*/1);
  SimNetwork::RpcResult rpc = net.Call(0, 1, {0xab}, Echo());
  ASSERT_TRUE(rpc.ok);
  EXPECT_EQ(rpc.attempts, 1);
  EXPECT_EQ(rpc.reply, std::vector<uint8_t>({0xab}));
  // request latency + server processing + reply latency.
  EXPECT_EQ(net.now_us(), 10'000u + 1'000u + 10'000u);
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_delivered, 2u);
  EXPECT_EQ(net.stats().retries, 0u);
  EXPECT_EQ(net.stats().late_replies, 0u);
}

TEST(SimNetworkTest, SameSeedReplaysIdenticalTrace) {
  LinkModel link;  // defaults: jitter on
  link.drop_probability = 0.2;
  auto run = [&](uint64_t seed) {
    SimNetwork net(8, link, RetryPolicy(), seed);
    for (uint32_t s = 1; s < 8; ++s) net.Call(0, s, {0x01, 0x02}, Echo());
    return std::make_pair(net.now_us(), net.stats().messages_sent);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

TEST(SimNetworkTest, AllDropsExhaustRetryBudgetWithExactBackoff) {
  LinkModel link = ExactLink();
  link.drop_probability = 1.0;
  SimNetwork net(2, link, ExactRetry(), /*seed=*/3);
  SimNetwork::RpcResult rpc = net.Call(0, 1, {0xff}, Echo());
  EXPECT_FALSE(rpc.ok);
  EXPECT_EQ(rpc.attempts, 4);
  EXPECT_EQ(net.stats().timeouts, 4u);
  EXPECT_EQ(net.stats().retries, 3u);
  EXPECT_EQ(net.stats().rpc_failures, 1u);
  EXPECT_EQ(net.stats().messages_dropped, 4u);
  // 4 timeouts plus the 50/100/200 ms backoff ladder (no jitter).
  EXPECT_EQ(net.now_us(), 4 * 100'000u + 50'000u + 100'000u + 200'000u);
}

TEST(SimNetworkTest, CrashedServerTimesOutEveryAttempt) {
  SimNetwork net(2, ExactLink(), ExactRetry(), /*seed=*/4);
  net.CrashAt(1, 0);
  EXPECT_FALSE(net.IsUp(1, 0));
  SimNetwork::RpcResult rpc = net.Call(0, 1, {0x00}, Echo());
  EXPECT_FALSE(rpc.ok);
  EXPECT_EQ(net.stats().rpc_failures, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(SimNetworkTest, StepCrashKillsTheServerPermanently) {
  SimNetwork net(2, ExactLink(), ExactRetry(), /*seed=*/5);
  net.set_step_crash_probability(1.0);
  SimNetwork::RpcResult rpc = net.Call(0, 1, {0x00}, Echo());
  EXPECT_FALSE(rpc.ok);
  // The coin fires on the first arriving request; later retries find a
  // dead node, so exactly one step crash is recorded.
  EXPECT_EQ(net.stats().step_crashes, 1u);
  EXPECT_FALSE(net.IsUp(1, net.now_us()));
}

TEST(SimNetworkTest, CallManyBranchesShareTheClock) {
  SimNetwork net(4, ExactLink(), ExactRetry(), /*seed=*/6);
  std::vector<SimNetwork::RpcResult> results = net.CallMany(
      0, {1, 2, 3}, {{0x01}, {0x02}, {0x03}}, Echo());
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.ok);
  // Parallel branches: the round costs one RTT, not three.
  EXPECT_EQ(net.now_us(), 21'000u);
  EXPECT_EQ(net.stats().messages_sent, 6u);
}

TEST(SimNetworkTest, EngageQuorumReplacesFailedMembers) {
  SimNetwork net(6, ExactLink(), ExactRetry(), /*seed=*/7);
  net.CrashAt(2, 0);  // candidate slot 1 is dead from the start
  SimNetwork::QuorumResult q = net.EngageQuorum(
      0, {1, 2, 3, 4}, /*k=*/2,
      [](uint32_t server) {
        return std::vector<uint8_t>{static_cast<uint8_t>(server)};
      },
      Echo());
  ASSERT_TRUE(q.ok);
  EXPECT_EQ(q.members, std::vector<uint32_t>({1, 3}));
  EXPECT_EQ(q.replacements, 1);
  EXPECT_EQ(net.stats().quorum_replacements, 1u);
  ASSERT_EQ(q.replies.size(), 2u);
  EXPECT_EQ(q.replies[0], std::vector<uint8_t>({1}));
  EXPECT_EQ(q.replies[1], std::vector<uint8_t>({3}));
}

TEST(SimNetworkTest, EngageQuorumFailsWhenCandidatesRunDry) {
  SimNetwork net(4, ExactLink(), ExactRetry(), /*seed=*/8);
  for (uint32_t node : {1u, 2u, 3u}) net.CrashAt(node, 0);
  SimNetwork::QuorumResult q = net.EngageQuorum(
      0, {1, 2, 3}, /*k=*/2,
      [](uint32_t) { return std::vector<uint8_t>{}; }, Echo());
  EXPECT_FALSE(q.ok);
}

TEST(SimNetworkTest, EngageQuorumRunsDryMidReplacementWave) {
  // Wave 1 engages {1, 2, 3} (k = 3) and collects slot 0's reply, but
  // members 2 and 3 are dead: the single spare (4) covers the first
  // failed slot and the list runs dry on the second — a PARTIAL quorum
  // with a substitution already made must still come back ok = false,
  // without losing the replies it did collect.
  SimNetwork net(6, ExactLink(), ExactRetry(), /*seed=*/10);
  net.CrashAt(2, 0);
  net.CrashAt(3, 0);
  SimNetwork::QuorumResult q = net.EngageQuorum(
      0, {1, 2, 3, 4}, /*k=*/3,
      [](uint32_t server) {
        return std::vector<uint8_t>{static_cast<uint8_t>(server)};
      },
      Echo());
  EXPECT_FALSE(q.ok);
  EXPECT_GE(q.replacements, 1);
  ASSERT_EQ(q.members.size(), 3u);
  EXPECT_EQ(q.members[0], 1u);  // the responsive member kept its slot
  ASSERT_EQ(q.replies.size(), 3u);
  EXPECT_EQ(q.replies[0], std::vector<uint8_t>({1}));  // reply retained
  // The caller treats ok = false as "restart with a fresh RND_T": no
  // member may be silently promoted into the dry slot.
  EXPECT_EQ(net.stats().rpc_failures, 2u);
}

TEST(SimNetworkTest, AdvanceRouteChargesOneLatencyPerHop) {
  SimNetwork net(2, ExactLink(), ExactRetry(), /*seed=*/9);
  net.AdvanceRoute(5);
  EXPECT_EQ(net.now_us(), 50'000u);
  EXPECT_EQ(net.stats().messages_sent, 5u);
}

// ------------------------------------------------------------ messages

TEST(MessagesTest, PlainMessagesRoundTrip) {
  core::msg::VrandInvite invite;
  invite.rs1 = 0.00125;
  invite.timestamp = 123456789;
  auto invite2 = core::msg::DecodeVrandInvite(core::msg::Encode(invite));
  ASSERT_TRUE(invite2.ok()) << invite2.status().ToString();
  EXPECT_DOUBLE_EQ(invite2->rs1, invite.rs1);
  EXPECT_EQ(invite2->timestamp, invite.timestamp);

  core::msg::CommitReply commit;
  commit.commitment = crypto::Hash256::Of("commitment");
  auto commit2 = core::msg::DecodeCommitReply(core::msg::Encode(commit));
  ASSERT_TRUE(commit2.ok());
  EXPECT_EQ(commit2->commitment, commit.commitment);

  core::msg::CommitList list;
  list.commitments = {crypto::Hash256::Of("a"), crypto::Hash256::Of("b")};
  list.timestamp = 42;
  auto list2 = core::msg::DecodeCommitList(core::msg::Encode(list));
  ASSERT_TRUE(list2.ok());
  EXPECT_EQ(list2->commitments, list.commitments);
  EXPECT_EQ(list2->timestamp, list.timestamp);

  core::msg::AttestRequest att;
  att.digest = crypto::Hash256::Of("digest");
  auto att2 = core::msg::DecodeAttestRequest(core::msg::Encode(att));
  ASSERT_TRUE(att2.ok());
  EXPECT_EQ(att2->digest, att.digest);
}

TEST(MessagesTest, StrictDecodeRejectsMangledBytes) {
  core::msg::CommitReply commit;
  commit.commitment = crypto::Hash256::Of("x");
  std::vector<uint8_t> bytes = core::msg::Encode(commit);

  // Truncation.
  std::vector<uint8_t> trunc(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(core::msg::DecodeCommitReply(trunc).ok());
  // Trailing garbage.
  std::vector<uint8_t> trail = bytes;
  trail.push_back(0x00);
  EXPECT_FALSE(core::msg::DecodeCommitReply(trail).ok());
  // Wrong tag: a CommitReply is not an AttestRequest.
  EXPECT_FALSE(core::msg::DecodeAttestRequest(bytes).ok());
  // Wrong magic.
  std::vector<uint8_t> magic = bytes;
  magic[0] ^= 0xff;
  EXPECT_FALSE(core::msg::DecodeCommitReply(magic).ok());
  // Empty.
  EXPECT_FALSE(core::msg::DecodeCommitReply({}).ok());
}

TEST(MessagesTest, EmptyCommitListRejected) {
  core::msg::CommitList list;  // zero commitments
  EXPECT_FALSE(core::msg::DecodeCommitList(core::msg::Encode(list)).ok());
}

// --------------------------------------- selection over the simulation

class SelectionOverNetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = test::MakeNetwork(/*n=*/1500, /*c_fraction=*/0.01,
                                 /*cache=*/192);
    ASSERT_NE(network_, nullptr);
    ctx_ = network_->context();
  }

  // The harness's restart loop: Unavailable (failed participant after
  // commitment, or unreachable quorum) restarts with a fresh RND_T.
  Result<core::SelectionProtocol::Outcome> RunWithRestarts(
      SimNetwork& simnet, util::Rng& rng, int budget = 25) {
    core::SelectionProtocol protocol(ctx_);
    for (int attempt = 1; attempt <= budget; ++attempt) {
      core::SelectionOptions options;
      options.network = &simnet;
      auto run = protocol.Run(/*trigger_index=*/5, rng, options);
      if (run.ok() || run.status().code() != StatusCode::kUnavailable) {
        return run;
      }
    }
    return Status::Unavailable("restart budget exhausted");
  }

  std::unique_ptr<sim::Network> network_;
  core::ProtocolContext ctx_;
};

TEST_F(SelectionOverNetworkTest, PerfectNetworkSucceedsAndVerifies) {
  SimNetwork simnet(static_cast<uint32_t>(network_->directory().size()),
                    LinkModel(), RetryPolicy(), /*seed=*/21);
  util::Rng rng(11);
  auto outcome = RunWithRestarts(simnet, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->actor_indices.size(),
            static_cast<size_t>(ctx_.actor_count));
  EXPECT_TRUE(core::VerifyActorList(ctx_, outcome->val).ok());
  // The protocol actually used the message layer...
  EXPECT_GT(simnet.stats().messages_sent, 0u);
  EXPECT_GT(simnet.now_us(), 0u);
  // ...and a perfect link needed no retries or replacements.
  EXPECT_EQ(simnet.stats().retries, 0u);
  EXPECT_EQ(simnet.stats().quorum_replacements, 0u);
}

TEST_F(SelectionOverNetworkTest, IdenticalSeedsGiveIdenticalSelections) {
  auto select = [&] {
    SimNetwork simnet(static_cast<uint32_t>(network_->directory().size()),
                      LinkModel(), RetryPolicy(), /*seed=*/33);
    util::Rng rng(17);
    auto outcome = RunWithRestarts(simnet, rng);
    EXPECT_TRUE(outcome.ok());
    return std::make_pair(outcome->actor_indices, simnet.now_us());
  };
  EXPECT_EQ(select(), select());
}

TEST_F(SelectionOverNetworkTest, LossyNetworkRetriesAndStillVerifies) {
  LinkModel link;
  link.drop_probability = 0.08;
  SimNetwork simnet(static_cast<uint32_t>(network_->directory().size()),
                    link, RetryPolicy(), /*seed=*/55);
  util::Rng rng(19);
  auto outcome = RunWithRestarts(simnet, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(core::VerifyActorList(ctx_, outcome->val).ok());
  // With ~8% loss per transmission, some retry fired somewhere.
  EXPECT_GT(simnet.stats().retries, 0u);
}

TEST_F(SelectionOverNetworkTest, CrashingParticipantsAreAbsorbed) {
  SimNetwork simnet(static_cast<uint32_t>(network_->directory().size()),
                    LinkModel(), RetryPolicy(), /*seed=*/77);
  simnet.set_step_crash_probability(0.05);
  util::Rng rng(23);
  auto outcome = RunWithRestarts(simnet, rng);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(core::VerifyActorList(ctx_, outcome->val).ok());
  EXPECT_GT(simnet.stats().step_crashes, 0u);
}

}  // namespace
}  // namespace sep2p
