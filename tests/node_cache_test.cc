#include "node/node_cache.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace sep2p::node {
namespace {

TEST(NodeCacheTest, CoverageCenteredOnOwner) {
  auto dir = test::MakeDirectory(1000);
  NodeCache cache(dir.get(), 42, /*rs3=*/0.05);
  EXPECT_EQ(cache.coverage().center(), dir->pos(42));
  EXPECT_NEAR(cache.coverage().size(), 0.05, 1e-9);
}

TEST(NodeCacheTest, SizeTracksRegionDensity) {
  auto dir = test::MakeDirectory(2000);
  NodeCache cache(dir.get(), 10, /*rs3=*/0.1);
  // Expected ~200 nodes; uniform placement keeps it in a wide band.
  EXPECT_GT(cache.size(), 120u);
  EXPECT_LT(cache.size(), 300u);
}

TEST(NodeCacheTest, EntriesExcludeOwnerAndAreLegitimate) {
  auto dir = test::MakeDirectory(500);
  NodeCache cache(dir.get(), 7, 0.08);
  for (uint32_t idx : cache.Entries()) {
    EXPECT_NE(idx, 7u);
    EXPECT_TRUE(cache.coverage().Contains(dir->pos(idx)));
  }
}

TEST(NodeCacheTest, LegitimateForIntersectsBothArcs) {
  auto dir = test::MakeDirectory(1000);
  NodeCache cache(dir.get(), 3, 0.06);
  dht::Region r3 = dht::Region::Centered(dir->pos(100), 0.06);
  std::vector<uint32_t> cl = cache.LegitimateFor(r3);
  for (uint32_t idx : cl) {
    EXPECT_TRUE(cache.coverage().Contains(dir->pos(idx)));
    EXPECT_TRUE(r3.Contains(dir->pos(idx)));
  }
  // Brute-force cross-check.
  size_t expected = 0;
  for (uint32_t i = 0; i < dir->size(); ++i) {
    if (i == 3) continue;
    if (cache.coverage().Contains(dir->pos(i)) &&
        r3.Contains(dir->pos(i))) {
      ++expected;
    }
  }
  EXPECT_EQ(cl.size(), expected);
}

TEST(NodeCacheTest, DisjointRegionsYieldEmptyCandidateList) {
  auto dir = test::MakeDirectory(1000);
  NodeCache cache(dir.get(), 0, 0.01);
  // A region on the far side of the ring.
  dht::RingPos antipode =
      dir->pos(0) + (static_cast<dht::RingPos>(1) << 127);
  dht::Region far = dht::Region::Centered(antipode, 0.01);
  EXPECT_TRUE(cache.LegitimateFor(far).empty());
}

TEST(NodeCacheTest, CoversMatchesCoverage) {
  auto dir = test::MakeDirectory(300);
  NodeCache cache(dir.get(), 5, 0.2);
  for (uint32_t i = 0; i < dir->size(); ++i) {
    bool expected =
        i != 5 && cache.coverage().Contains(dir->pos(i));
    EXPECT_EQ(cache.Covers(i), expected) << i;
  }
}

TEST(NodeCacheTest, DeadNodesDropOutOfEntries) {
  auto dir = test::MakeDirectory(400);
  NodeCache cache(dir.get(), 9, 0.3);
  std::vector<uint32_t> before = cache.Entries();
  ASSERT_FALSE(before.empty());
  dir->SetAlive(before[0], false);
  std::vector<uint32_t> after = cache.Entries();
  EXPECT_EQ(after.size(), before.size() - 1);
  EXPECT_EQ(std::count(after.begin(), after.end(), before[0]), 0);
  dir->SetAlive(before[0], true);
}

}  // namespace
}  // namespace sep2p::node
