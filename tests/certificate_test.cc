#include "crypto/certificate.h"

#include <gtest/gtest.h>

#include "crypto/ed25519_provider.h"
#include "crypto/sim_provider.h"
#include "dht/node_id.h"

namespace sep2p::crypto {
namespace {

TEST(CertificateTest, IssueAndCheck) {
  Ed25519Provider provider;
  util::Rng rng(1);
  auto ca = CertificateAuthority::Create(provider, rng);
  ASSERT_TRUE(ca.ok());

  auto node = provider.GenerateKeyPair(rng);
  ASSERT_TRUE(node.ok());
  auto cert = ca->Issue(node->pub);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(ca->Check(*cert));
}

TEST(CertificateTest, ForgedSubjectRejected) {
  Ed25519Provider provider;
  util::Rng rng(2);
  auto ca = CertificateAuthority::Create(provider, rng);
  ASSERT_TRUE(ca.ok());
  auto node = provider.GenerateKeyPair(rng);
  auto attacker = provider.GenerateKeyPair(rng);
  auto cert = ca->Issue(node->pub);
  ASSERT_TRUE(cert.ok());

  Certificate forged = *cert;
  forged.subject = attacker->pub;  // steal the CA signature for a new key
  EXPECT_FALSE(ca->Check(forged));
}

TEST(CertificateTest, ForgedSerialRejected) {
  SimProvider provider;
  util::Rng rng(3);
  auto ca = CertificateAuthority::Create(provider, rng);
  auto node = provider.GenerateKeyPair(rng);
  auto cert = ca->Issue(node->pub);
  ASSERT_TRUE(cert.ok());
  Certificate forged = *cert;
  forged.serial += 1;
  EXPECT_FALSE(ca->Check(forged));
}

TEST(CertificateTest, SelfSignedRejected) {
  SimProvider provider;
  util::Rng rng(4);
  auto ca = CertificateAuthority::Create(provider, rng);
  auto rogue = provider.GenerateKeyPair(rng);
  Certificate cert;
  cert.subject = rogue->pub;
  cert.serial = 9;
  auto sig = provider.Sign(rogue->priv, cert.SignedBytes());
  ASSERT_TRUE(sig.ok());
  cert.ca_signature = *sig;  // signed by the rogue key, not the CA
  EXPECT_FALSE(ca->Check(cert));
}

TEST(CertificateTest, SerialsAreUnique) {
  SimProvider provider;
  util::Rng rng(5);
  auto ca = CertificateAuthority::Create(provider, rng);
  auto n1 = provider.GenerateKeyPair(rng);
  auto n2 = provider.GenerateKeyPair(rng);
  auto c1 = ca->Issue(n1->pub);
  auto c2 = ca->Issue(n2->pub);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->serial, c2->serial);
}

TEST(CertificateTest, ImposedNodeIdIsHashOfSubject) {
  SimProvider provider;
  util::Rng rng(6);
  auto ca = CertificateAuthority::Create(provider, rng);
  auto node = provider.GenerateKeyPair(rng);
  auto cert = ca->Issue(node->pub);
  ASSERT_TRUE(cert.ok());
  EXPECT_EQ(cert->NodeIdFromSubject(), dht::NodeIdForKey(node->pub));
}

TEST(CertificateTest, CheckCostsOneAsymmetricOp) {
  SimProvider provider;
  util::Rng rng(7);
  auto ca = CertificateAuthority::Create(provider, rng);
  auto node = provider.GenerateKeyPair(rng);
  auto cert = ca->Issue(node->pub);
  ASSERT_TRUE(cert.ok());
  uint64_t before = provider.meter().verifies();
  ca->Check(*cert);
  EXPECT_EQ(provider.meter().verifies(), before + 1);
}

}  // namespace
}  // namespace sep2p::crypto
