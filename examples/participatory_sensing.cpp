// Use case 1 (paper §5.1): mobile participatory sensing.
//
// 800 PDMSs record geo-localized traffic-speed readings; one aggregation
// round selects data aggregators with the SEP2P protocol, every source
// verifies the actor list (2k ops), contributes anonymized (cell, value)
// tuples, and the main aggregator publishes the spatial statistics.

#include <cstdio>

#include "apps/sensing.h"
#include "net/sim_network.h"
#include "node/app_runtime.h"
#include "sim/network.h"

using namespace sep2p;

int main() {
  sim::Parameters params;
  params.n = 800;
  params.colluding_fraction = 0.01;
  params.cache_size = 96;
  params.seed = 20260706;

  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;

  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < net.directory().size(); ++i) pdms.emplace_back(i);

  // Every application RPC travels over the simulated message network:
  // 20ms base latency, mild jitter, and (here) a lossless link.
  net::LinkModel link;
  net::SimNetwork simnet(net.directory().size(), link, net::RetryPolicy{},
                         params.seed);
  node::AppRuntime runtime(&simnet);

  apps::ParticipatorySensingApp::Config config;
  config.grid = 4;
  config.aggregator_count = 8;
  apps::ParticipatorySensingApp app(&net, &pdms, &runtime, config);

  util::Rng rng(99);
  app.GenerateWorkload(/*sources=*/250, /*readings_per_source=*/8, rng);
  std::printf("250 mobile probes recorded 8 readings each.\n\n");

  auto round = app.RunRound(/*trigger_index=*/17, rng);
  if (!round.ok()) {
    std::fprintf(stderr, "round failed: %s\n",
                 round.status().ToString().c_str());
    return 1;
  }

  std::printf("data aggregators (SEP2P-selected):");
  for (uint32_t da : round->aggregators) std::printf(" %u", da);
  std::printf("   MDA: %u\n", round->main_aggregator);
  std::printf("sources contributed: %d (each verified the actor list at "
              "%.0f asym ops)\n\n",
              round->sources, round->per_source_verification_ops);

  std::printf("spatial average speed (km/h), %dx%d grid "
              "(measured / ground truth):\n",
              config.grid, config.grid);
  for (int iy = config.grid - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < config.grid; ++ix) {
      const apps::CellStat& cell = round->aggregate.at(ix, iy);
      std::printf("  %5.1f/%-5.1f", cell.average(),
                  app.GroundTruth(ix, iy));
    }
    std::printf("\n");
  }
  std::printf("\ntotal readings aggregated: %llu\n",
              static_cast<unsigned long long>(
                  round->aggregate.total_count()));
  std::printf("round cost: %s\n", round->cost.ToString().c_str());
  std::printf("round took %.1f virtual seconds; network: %llu msgs, "
              "%llu retries\n",
              round->round_latency_us / 1e6,
              static_cast<unsigned long long>(simnet.stats().messages_sent),
              static_cast<unsigned long long>(simnet.stats().retries));

  // Task atomicity: what did each DA actually see?
  std::printf("\nanonymized values seen per DA (no identities):");
  for (const auto& values : round->values_seen_by_da) {
    std::printf(" %zu", values.size());
  }
  std::printf("\n");
  return 0;
}
