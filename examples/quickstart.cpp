// Quickstart: build a SEP2P network, run one secure actor selection, and
// verify the resulting actor list as a data source would.
//
//   $ ./quickstart
//
// Uses real Ed25519 signatures on a 500-node network.

#include <cstdio>

#include "core/selection.h"
#include "core/verification.h"
#include "sim/network.h"

using namespace sep2p;

int main() {
  // 1. Provision a network of PDMSs: each node gets an Ed25519 key pair,
  //    a device certificate from the offline CA, and the imposed DHT
  //    location hash(public key).
  sim::Parameters params;
  params.n = 500;
  params.colluding_fraction = 0.01;  // 5 covert colluders
  params.actor_count = 8;
  params.cache_size = 64;
  params.provider = sim::Parameters::ProviderKind::kEd25519;
  params.seed = 7;

  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "network build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;
  std::printf("network: %s\n", params.ToString().c_str());
  std::printf("k-table (k, region size):");
  for (const auto& entry : net.ktable().entries()) {
    std::printf("  (%d, %.3g)", entry.k, entry.rs);
  }
  std::printf("\n\n");

  // 2. Any node can trigger a computation; node 42 asks for 8 randomly
  //    selected data processors.
  core::ProtocolContext ctx = net.context();
  core::SelectionProtocol selection(ctx);
  util::Rng rng(123);
  auto outcome = selection.Run(/*trigger_index=*/42, rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("verifiable random RND_T = %s...\n",
              outcome->val.rnd_t.ShortHex().c_str());
  std::printf("execution setter: node %u (owner of hash(RND_T))\n",
              outcome->setter_index);
  std::printf("actor list (signed by %d setter-legitimate nodes):\n",
              outcome->val.k());
  for (size_t i = 0; i < outcome->actor_indices.size(); ++i) {
    const uint32_t actor = outcome->actor_indices[i];
    std::printf("  actor %zu: node %u  id=%s...%s\n", i, actor,
                net.directory().id(actor).ShortHex().c_str(),
                net.directory().colluding(actor) ? "  [covert colluder]" : "");
  }
  std::printf("setup cost: %s\n", outcome->cost.ToString().c_str());

  // 3. A data source verifies the list before disclosing anything:
  //    exactly 2k asymmetric crypto operations.
  auto decision =
      core::VerifyBeforeDisclosure(ctx, outcome->val, nullptr, nullptr);
  std::printf("\nverifier: %s (%.0f asymmetric ops = 2k)\n",
              decision.accepted ? "ACCEPTED" : "REJECTED",
              decision.cost.crypto_work);

  // 4. Tampering is caught: swap the random the attacker would need.
  auto forged =
      core::tamper::ReplaceRandom(outcome->val, crypto::Hash256::Of("evil"));
  auto caught = core::VerifyBeforeDisclosure(ctx, forged, nullptr, nullptr);
  std::printf("forged list: %s (%s)\n",
              caught.accepted ? "ACCEPTED (!!)" : "REJECTED",
              caught.reason.ToString().c_str());
  return caught.accepted ? 1 : 0;
}
