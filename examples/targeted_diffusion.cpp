// Use case 2 (paper §5.1): profile-based targeted data diffusion.
//
// Nodes publish profile concepts into the distributed concept index
// (Shamir-sharded so no single metadata indexer learns the subscriber
// base); a publisher then diffuses a message to everyone matching
//   "subscriber:tech AND city:paris AND NOT unsubscribed".

#include <cstdio>

#include "apps/concept_index.h"
#include "apps/diffusion.h"
#include "net/sim_network.h"
#include "node/app_runtime.h"
#include "sim/network.h"

using namespace sep2p;

int main() {
  sim::Parameters params;
  params.n = 1000;
  params.colluding_fraction = 0.01;
  params.cache_size = 128;
  params.seed = 31337;

  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;

  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < net.directory().size(); ++i) pdms.emplace_back(i);

  // Profiles: every 3rd node follows tech, every 4th lives in Paris,
  // every 10th unsubscribed.
  for (uint32_t i = 0; i < pdms.size(); ++i) {
    if (i % 3 == 0) pdms[i].AddConcept("subscriber:tech");
    if (i % 4 == 0) pdms[i].AddConcept("city:paris");
    if (i % 10 == 0) pdms[i].AddConcept("unsubscribed");
  }

  // 2-of-3 Shamir sharding: one corrupted indexer reconstructs nothing.
  apps::ConceptIndex::Options options;
  options.shamir_threshold = 2;
  options.shamir_shares = 3;
  net::SimNetwork simnet(net.directory().size(), net::LinkModel{},
                         net::RetryPolicy{}, params.seed);
  node::AppRuntime runtime(&simnet);
  apps::ConceptIndex index(&net, &runtime, options);
  apps::DiffusionApp app(&net, &pdms, &index, &runtime);

  util::Rng rng(5);
  auto published = app.PublishAllProfiles(rng);
  if (!published.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  std::printf("profiles published into the concept index "
              "(%.0f DHT messages, 2-of-3 Shamir shares per posting)\n\n",
              published->msg_work);

  const char* expression =
      "subscriber:tech AND city:paris AND NOT unsubscribed";
  auto result = app.Diffuse(/*publisher=*/1, expression,
                            "new per-cpu datastructures article", rng);
  if (!result.ok()) {
    std::fprintf(stderr, "diffusion failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("target profile: %s\n", expression);
  std::printf("target finders (SEP2P-selected):");
  for (uint32_t tf : result->target_finders) std::printf(" %u", tf);
  std::printf("\nindexers contacted: %d (each verified the actor list "
              "before disclosing its slice)\n",
              result->indexers_contacted);
  std::printf("targets reached: %zu", result->targets.size());
  std::printf("   first few:");
  for (size_t i = 0; i < result->targets.size() && i < 8; ++i) {
    std::printf(" %u", result->targets[i]);
  }
  std::printf("\ncost: %s\n", result->cost.ToString().c_str());
  std::printf("diffusion took %.1f virtual seconds over the message "
              "network\n",
              result->round_latency_us / 1e6);

  // Spot-check one inbox.
  if (!result->targets.empty()) {
    uint32_t first = result->targets.front();
    std::printf("\nnode %u inbox: \"%s\"\n", first,
                pdms[first].inbox().front().c_str());
  }

  // What does a single corrupted metadata indexer learn about the
  // 'subscriber:tech' community? Nothing useful, thanks to the sharding.
  auto mi = index.IndexerFor("subscriber:tech", 0);
  if (mi.ok()) {
    auto leak = index.SingleIndexerDisclosure(*mi, "subscriber:tech");
    int valid = 0;
    for (uint32_t decoded : leak) {
      if (decoded < pdms.size() &&
          pdms[decoded].HasConcept("subscriber:tech")) {
        ++valid;
      }
    }
    std::printf("\ncorrupted-MI probe: %zu stored shares decode to %d "
                "correct postings (expected ~0 with 2-of-3 sharding)\n",
                leak.size(), valid);
  }
  return 0;
}
