// Use case 3 (paper §5.1): distributed aggregate queries.
//
// "Find the average number of sick-leave days of pilots in their
// forties" — the paper's own example. Target finding resolves the
// profile expression through the concept index; the matching nodes
// verify the aggregator list and contribute their values through random
// proxies so the aggregators never learn who sent what.

#include <cstdio>

#include "apps/query.h"
#include "net/sim_network.h"
#include "node/app_runtime.h"
#include "sim/network.h"

using namespace sep2p;

int main() {
  sim::Parameters params;
  params.n = 1500;
  params.colluding_fraction = 0.01;
  params.cache_size = 192;
  params.seed = 4242;

  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;

  std::vector<node::PdmsNode> pdms;
  for (uint32_t i = 0; i < net.directory().size(); ++i) pdms.emplace_back(i);

  // Population: 20% pilots, 30% in their forties; sick-leave days 0..14.
  util::Rng rng(8);
  int pilots_in_forties = 0;
  for (uint32_t i = 0; i < pdms.size(); ++i) {
    bool pilot = rng.NextBool(0.2);
    bool forties = rng.NextBool(0.3);
    if (pilot) pdms[i].AddConcept("occupation:pilot");
    if (forties) pdms[i].AddConcept("age:40s");
    pdms[i].SetAttribute("sick_leave_days",
                         static_cast<double>(rng.NextUint64(15)));
    pilots_in_forties += pilot && forties;
  }
  std::printf("population: %zu PDMSs, %d pilots in their forties\n\n",
              pdms.size(), pilots_in_forties);

  // A mildly lossy message network: 1% of transmissions drop, and the
  // per-RPC retry/backoff machinery absorbs the loss.
  net::LinkModel link;
  link.drop_probability = 0.01;
  net::SimNetwork simnet(net.directory().size(), link, net::RetryPolicy{},
                         params.seed);
  node::AppRuntime runtime(&simnet);

  apps::ConceptIndex index(&net, &runtime);
  apps::DiffusionApp publisher(&net, &pdms, &index, &runtime);
  if (!publisher.PublishAllProfiles(rng).ok()) {
    std::fprintf(stderr, "profile publication failed\n");
    return 1;
  }

  apps::QueryApp app(&net, &pdms, &index, &runtime);
  apps::QuerySpec spec;
  spec.profile_expression = "occupation:pilot AND age:40s";
  spec.attribute = "sick_leave_days";
  spec.aggregate = apps::Aggregate::kAvg;

  auto result = app.Execute(/*querier=*/3, spec, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("SELECT AVG(sick_leave_days) WHERE %s\n",
              spec.profile_expression.c_str());
  std::printf("  -> %.3f over %llu contributors\n\n", result->value,
              static_cast<unsigned long long>(result->contributors));

  std::printf("data aggregators (SEP2P-selected):");
  for (uint32_t da : result->aggregators) std::printf(" %u", da);
  std::printf("\nquery cost: %s\n", result->cost.ToString().c_str());
  std::printf("query took %.1f virtual seconds; %llu transport retries "
              "absorbed the 1%% loss (%d contributions lost, %d DA "
              "failovers)\n",
              result->round_latency_us / 1e6,
              static_cast<unsigned long long>(simnet.stats().retries),
              result->lost_contributions, result->da_failovers);

  // Knowledge separation: the DA-side trace has values but no senders;
  // the proxy-side trace has senders but no values.
  std::printf("\nDA trace: %zu anonymous values; proxy trace: %zu "
              "identities without data\n",
              result->values_seen_by_da.size(),
              result->senders_seen_by_proxies.size());

  // Ground-truth cross-check.
  double expected = 0;
  int count = 0;
  for (const auto& node : pdms) {
    if (node.HasConcept("occupation:pilot") && node.HasConcept("age:40s")) {
      expected += *node.GetAttribute("sick_leave_days");
      ++count;
    }
  }
  std::printf("ground truth: %.3f over %d nodes -> %s\n", expected / count,
              count,
              std::abs(expected / count - result->value) < 1e-9 ? "MATCH"
                                                                : "MISMATCH");
  return 0;
}
