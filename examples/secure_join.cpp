// §3.6 in action: joining the network with attested node caches, and
// what the cache-validity machinery rejects.
//
// A newcomer must bootstrap a *valid* node cache — containing only
// genuine PDMSs — because SEP2P's candidate lists inherit their
// trustworthiness from it. The newcomer asks its ring neighbors for
// their caches, each attested by k legitimate nodes, verifies the
// attestations, and unions the results. A forged cache (say, stuffed
// with a Sybil identity) fails verification.

#include <cstdio>

#include "node/churn.h"
#include "node/join.h"
#include "node/node_cache.h"
#include "sim/network.h"

using namespace sep2p;

int main() {
  sim::Parameters params;
  params.n = 1200;
  params.colluding_fraction = 0.01;
  params.cache_size = 128;
  params.seed = 99;

  auto network = sim::Network::Build(params);
  if (!network.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  sim::Network& net = **network;
  core::ProtocolContext ctx = net.context();
  util::Rng rng(7);

  // --- A node joins and bootstraps its cache.
  const uint32_t newcomer = 321;
  node::JoinProtocol join(ctx);
  auto outcome = join.Join(newcomer, rng);
  if (!outcome.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  node::NodeCache truth(&net.directory(), newcomer, ctx.rs3);
  std::printf("node %u joined between predecessor %u and successor %u\n",
              newcomer, outcome->predecessor, outcome->successor);
  std::printf("bootstrapped cache: %zu validated entries (ground truth "
              "coverage: %zu)\n",
              outcome->cache.size(), truth.Entries().size());
  std::printf("join cost: %s\n\n", outcome->cost.ToString().c_str());

  // --- What the attestation machinery guarantees.
  auto attested = join.AttestCache(outcome->successor, rng);
  if (!attested.ok()) return 1;
  auto verified = node::VerifyAttestedCache(ctx, *attested);
  std::printf("successor's cache: %zu entries attested by k = %d nodes; "
              "verification: %s (%.0f asym ops)\n",
              attested->entries.size(), attested->k(),
              verified.ok() ? "OK" : "REJECTED",
              verified.ok() ? verified->crypto_work : 0.0);

  node::AttestedCache forged = *attested;
  crypto::PublicKey sybil{};
  sybil[7] = 0x77;
  forged.entries.push_back(sybil);  // smuggle a fabricated identity
  auto caught = node::VerifyAttestedCache(ctx, forged);
  std::printf("forged cache with a Sybil entry: %s (%s)\n\n",
              caught.ok() ? "ACCEPTED (!!)" : "REJECTED",
              caught.ok() ? "" : caught.status().ToString().c_str());

  // --- What keeping caches fresh costs under churn (Figure 8's model).
  std::printf("maintenance under churn (cache = %zu, k = %d):\n",
              params.cache_size, net.ktable().k_max());
  for (double mtbf_hours : {6.0, 24.0, 120.0}) {
    auto report = node::ChurnSimulator::Analytic(
        params.n, net.ktable().k_max(), params.cache_size, mtbf_hours);
    std::printf("  MTBF %5.0fh -> %.3f asym ops/node/min, %.3f msgs\n",
                mtbf_hours, report.crypto_ops_per_node_per_min,
                report.messages_per_node_per_min);
  }
  return caught.ok() ? 1 : 0;
}
