# Empty dependencies file for sep2p.
# This may be replaced when dependencies are built.
