file(REMOVE_RECURSE
  "libsep2p.a"
)
