
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/concept_index.cc" "src/CMakeFiles/sep2p.dir/apps/concept_index.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/concept_index.cc.o.d"
  "/root/repo/src/apps/diffusion.cc" "src/CMakeFiles/sep2p.dir/apps/diffusion.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/diffusion.cc.o.d"
  "/root/repo/src/apps/profile_expression.cc" "src/CMakeFiles/sep2p.dir/apps/profile_expression.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/profile_expression.cc.o.d"
  "/root/repo/src/apps/proxy.cc" "src/CMakeFiles/sep2p.dir/apps/proxy.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/proxy.cc.o.d"
  "/root/repo/src/apps/query.cc" "src/CMakeFiles/sep2p.dir/apps/query.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/query.cc.o.d"
  "/root/repo/src/apps/sensing.cc" "src/CMakeFiles/sep2p.dir/apps/sensing.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/apps/sensing.cc.o.d"
  "/root/repo/src/core/csar.cc" "src/CMakeFiles/sep2p.dir/core/csar.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/csar.cc.o.d"
  "/root/repo/src/core/ktable.cc" "src/CMakeFiles/sep2p.dir/core/ktable.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/ktable.cc.o.d"
  "/root/repo/src/core/probability.cc" "src/CMakeFiles/sep2p.dir/core/probability.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/probability.cc.o.d"
  "/root/repo/src/core/rate_limiter.cc" "src/CMakeFiles/sep2p.dir/core/rate_limiter.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/rate_limiter.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/sep2p.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/selection.cc.o.d"
  "/root/repo/src/core/verification.cc" "src/CMakeFiles/sep2p.dir/core/verification.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/verification.cc.o.d"
  "/root/repo/src/core/vrand.cc" "src/CMakeFiles/sep2p.dir/core/vrand.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/vrand.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/CMakeFiles/sep2p.dir/core/wire.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/core/wire.cc.o.d"
  "/root/repo/src/crypto/certificate.cc" "src/CMakeFiles/sep2p.dir/crypto/certificate.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/certificate.cc.o.d"
  "/root/repo/src/crypto/ed25519_provider.cc" "src/CMakeFiles/sep2p.dir/crypto/ed25519_provider.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/ed25519_provider.cc.o.d"
  "/root/repo/src/crypto/hash256.cc" "src/CMakeFiles/sep2p.dir/crypto/hash256.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/hash256.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/sep2p.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/sep2p.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/shamir.cc" "src/CMakeFiles/sep2p.dir/crypto/shamir.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/shamir.cc.o.d"
  "/root/repo/src/crypto/signature_provider.cc" "src/CMakeFiles/sep2p.dir/crypto/signature_provider.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/signature_provider.cc.o.d"
  "/root/repo/src/crypto/sim_provider.cc" "src/CMakeFiles/sep2p.dir/crypto/sim_provider.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/crypto/sim_provider.cc.o.d"
  "/root/repo/src/dht/can.cc" "src/CMakeFiles/sep2p.dir/dht/can.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/can.cc.o.d"
  "/root/repo/src/dht/chord.cc" "src/CMakeFiles/sep2p.dir/dht/chord.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/chord.cc.o.d"
  "/root/repo/src/dht/directory.cc" "src/CMakeFiles/sep2p.dir/dht/directory.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/directory.cc.o.d"
  "/root/repo/src/dht/kademlia.cc" "src/CMakeFiles/sep2p.dir/dht/kademlia.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/kademlia.cc.o.d"
  "/root/repo/src/dht/kv_store.cc" "src/CMakeFiles/sep2p.dir/dht/kv_store.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/kv_store.cc.o.d"
  "/root/repo/src/dht/node_id.cc" "src/CMakeFiles/sep2p.dir/dht/node_id.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/node_id.cc.o.d"
  "/root/repo/src/dht/region.cc" "src/CMakeFiles/sep2p.dir/dht/region.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/dht/region.cc.o.d"
  "/root/repo/src/net/cost.cc" "src/CMakeFiles/sep2p.dir/net/cost.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/net/cost.cc.o.d"
  "/root/repo/src/net/failure.cc" "src/CMakeFiles/sep2p.dir/net/failure.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/net/failure.cc.o.d"
  "/root/repo/src/node/churn.cc" "src/CMakeFiles/sep2p.dir/node/churn.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/node/churn.cc.o.d"
  "/root/repo/src/node/join.cc" "src/CMakeFiles/sep2p.dir/node/join.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/node/join.cc.o.d"
  "/root/repo/src/node/node_cache.cc" "src/CMakeFiles/sep2p.dir/node/node_cache.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/node/node_cache.cc.o.d"
  "/root/repo/src/node/pdms_node.cc" "src/CMakeFiles/sep2p.dir/node/pdms_node.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/node/pdms_node.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/sep2p.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/sep2p.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/sep2p.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/parameters.cc" "src/CMakeFiles/sep2p.dir/sim/parameters.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/sim/parameters.cc.o.d"
  "/root/repo/src/strategies/adversary.cc" "src/CMakeFiles/sep2p.dir/strategies/adversary.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/strategies/adversary.cc.o.d"
  "/root/repo/src/strategies/baselines.cc" "src/CMakeFiles/sep2p.dir/strategies/baselines.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/strategies/baselines.cc.o.d"
  "/root/repo/src/strategies/es_strategies.cc" "src/CMakeFiles/sep2p.dir/strategies/es_strategies.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/strategies/es_strategies.cc.o.d"
  "/root/repo/src/strategies/mhash.cc" "src/CMakeFiles/sep2p.dir/strategies/mhash.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/strategies/mhash.cc.o.d"
  "/root/repo/src/strategies/strategy.cc" "src/CMakeFiles/sep2p.dir/strategies/strategy.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/strategies/strategy.cc.o.d"
  "/root/repo/src/util/hex.cc" "src/CMakeFiles/sep2p.dir/util/hex.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/util/hex.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/sep2p.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/sep2p.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sep2p.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sep2p.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
