# Empty dependencies file for participatory_sensing.
# This may be replaced when dependencies are built.
