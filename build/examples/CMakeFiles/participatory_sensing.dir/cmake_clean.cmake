file(REMOVE_RECURSE
  "CMakeFiles/participatory_sensing.dir/participatory_sensing.cpp.o"
  "CMakeFiles/participatory_sensing.dir/participatory_sensing.cpp.o.d"
  "participatory_sensing"
  "participatory_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/participatory_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
