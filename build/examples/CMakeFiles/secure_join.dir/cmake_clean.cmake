file(REMOVE_RECURSE
  "CMakeFiles/secure_join.dir/secure_join.cpp.o"
  "CMakeFiles/secure_join.dir/secure_join.cpp.o.d"
  "secure_join"
  "secure_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
