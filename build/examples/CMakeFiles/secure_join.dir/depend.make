# Empty dependencies file for secure_join.
# This may be replaced when dependencies are built.
