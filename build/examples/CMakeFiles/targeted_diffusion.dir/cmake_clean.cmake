file(REMOVE_RECURSE
  "CMakeFiles/targeted_diffusion.dir/targeted_diffusion.cpp.o"
  "CMakeFiles/targeted_diffusion.dir/targeted_diffusion.cpp.o.d"
  "targeted_diffusion"
  "targeted_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
