# Empty compiler generated dependencies file for targeted_diffusion.
# This may be replaced when dependencies are built.
