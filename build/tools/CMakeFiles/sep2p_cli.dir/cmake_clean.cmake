file(REMOVE_RECURSE
  "CMakeFiles/sep2p_cli.dir/sep2p_cli.cc.o"
  "CMakeFiles/sep2p_cli.dir/sep2p_cli.cc.o.d"
  "sep2p_cli"
  "sep2p_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sep2p_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
