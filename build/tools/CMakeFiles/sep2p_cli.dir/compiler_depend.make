# Empty compiler generated dependencies file for sep2p_cli.
# This may be replaced when dependencies are built.
