file(REMOVE_RECURSE
  "../bench/fig6_ktable"
  "../bench/fig6_ktable.pdb"
  "CMakeFiles/fig6_ktable.dir/fig6_ktable.cc.o"
  "CMakeFiles/fig6_ktable.dir/fig6_ktable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ktable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
