# Empty compiler generated dependencies file for fig6_ktable.
# This may be replaced when dependencies are built.
