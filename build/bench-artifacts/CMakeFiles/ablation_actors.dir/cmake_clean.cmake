file(REMOVE_RECURSE
  "../bench/ablation_actors"
  "../bench/ablation_actors.pdb"
  "CMakeFiles/ablation_actors.dir/ablation_actors.cc.o"
  "CMakeFiles/ablation_actors.dir/ablation_actors.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
