# Empty compiler generated dependencies file for fig8_maintenance.
# This may be replaced when dependencies are built.
