file(REMOVE_RECURSE
  "../bench/fig8_maintenance"
  "../bench/fig8_maintenance.pdb"
  "CMakeFiles/fig8_maintenance.dir/fig8_maintenance.cc.o"
  "CMakeFiles/fig8_maintenance.dir/fig8_maintenance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
