file(REMOVE_RECURSE
  "../bench/fig7_cache_size"
  "../bench/fig7_cache_size.pdb"
  "CMakeFiles/fig7_cache_size.dir/fig7_cache_size.cc.o"
  "CMakeFiles/fig7_cache_size.dir/fig7_cache_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
