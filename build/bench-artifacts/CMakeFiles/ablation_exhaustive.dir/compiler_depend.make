# Empty compiler generated dependencies file for ablation_exhaustive.
# This may be replaced when dependencies are built.
