file(REMOVE_RECURSE
  "../bench/ablation_exhaustive"
  "../bench/ablation_exhaustive.pdb"
  "CMakeFiles/ablation_exhaustive.dir/ablation_exhaustive.cc.o"
  "CMakeFiles/ablation_exhaustive.dir/ablation_exhaustive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
