file(REMOVE_RECURSE
  "../bench/fig5_setup_messages"
  "../bench/fig5_setup_messages.pdb"
  "CMakeFiles/fig5_setup_messages.dir/fig5_setup_messages.cc.o"
  "CMakeFiles/fig5_setup_messages.dir/fig5_setup_messages.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_setup_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
