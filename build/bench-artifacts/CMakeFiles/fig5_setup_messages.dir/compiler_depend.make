# Empty compiler generated dependencies file for fig5_setup_messages.
# This may be replaced when dependencies are built.
