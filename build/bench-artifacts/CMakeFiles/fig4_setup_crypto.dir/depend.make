# Empty dependencies file for fig4_setup_crypto.
# This may be replaced when dependencies are built.
