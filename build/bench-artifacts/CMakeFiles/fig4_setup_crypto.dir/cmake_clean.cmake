file(REMOVE_RECURSE
  "../bench/fig4_setup_crypto"
  "../bench/fig4_setup_crypto.pdb"
  "CMakeFiles/fig4_setup_crypto.dir/fig4_setup_crypto.cc.o"
  "CMakeFiles/fig4_setup_crypto.dir/fig4_setup_crypto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_setup_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
