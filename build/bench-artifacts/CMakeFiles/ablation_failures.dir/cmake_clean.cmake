file(REMOVE_RECURSE
  "../bench/ablation_failures"
  "../bench/ablation_failures.pdb"
  "CMakeFiles/ablation_failures.dir/ablation_failures.cc.o"
  "CMakeFiles/ablation_failures.dir/ablation_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
