# Empty dependencies file for sep2p_tests.
# This may be replaced when dependencies are built.
