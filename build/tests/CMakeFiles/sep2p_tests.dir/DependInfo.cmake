
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/can_test.cc" "tests/CMakeFiles/sep2p_tests.dir/can_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/can_test.cc.o.d"
  "/root/repo/tests/certificate_test.cc" "tests/CMakeFiles/sep2p_tests.dir/certificate_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/certificate_test.cc.o.d"
  "/root/repo/tests/chord_test.cc" "tests/CMakeFiles/sep2p_tests.dir/chord_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/chord_test.cc.o.d"
  "/root/repo/tests/churn_test.cc" "tests/CMakeFiles/sep2p_tests.dir/churn_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/churn_test.cc.o.d"
  "/root/repo/tests/concept_index_test.cc" "tests/CMakeFiles/sep2p_tests.dir/concept_index_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/concept_index_test.cc.o.d"
  "/root/repo/tests/cost_test.cc" "tests/CMakeFiles/sep2p_tests.dir/cost_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/cost_test.cc.o.d"
  "/root/repo/tests/csar_test.cc" "tests/CMakeFiles/sep2p_tests.dir/csar_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/csar_test.cc.o.d"
  "/root/repo/tests/diffusion_test.cc" "tests/CMakeFiles/sep2p_tests.dir/diffusion_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/diffusion_test.cc.o.d"
  "/root/repo/tests/directory_test.cc" "tests/CMakeFiles/sep2p_tests.dir/directory_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/directory_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/sep2p_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/hash256_test.cc" "tests/CMakeFiles/sep2p_tests.dir/hash256_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/hash256_test.cc.o.d"
  "/root/repo/tests/hex_test.cc" "tests/CMakeFiles/sep2p_tests.dir/hex_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/hex_test.cc.o.d"
  "/root/repo/tests/hmac_test.cc" "tests/CMakeFiles/sep2p_tests.dir/hmac_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/hmac_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sep2p_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/join_test.cc" "tests/CMakeFiles/sep2p_tests.dir/join_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/join_test.cc.o.d"
  "/root/repo/tests/kademlia_test.cc" "tests/CMakeFiles/sep2p_tests.dir/kademlia_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/kademlia_test.cc.o.d"
  "/root/repo/tests/ktable_test.cc" "tests/CMakeFiles/sep2p_tests.dir/ktable_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/ktable_test.cc.o.d"
  "/root/repo/tests/kv_store_test.cc" "tests/CMakeFiles/sep2p_tests.dir/kv_store_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/kv_store_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/sep2p_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/sep2p_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/sep2p_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/node_cache_test.cc" "tests/CMakeFiles/sep2p_tests.dir/node_cache_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/node_cache_test.cc.o.d"
  "/root/repo/tests/probability_test.cc" "tests/CMakeFiles/sep2p_tests.dir/probability_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/probability_test.cc.o.d"
  "/root/repo/tests/profile_expression_test.cc" "tests/CMakeFiles/sep2p_tests.dir/profile_expression_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/profile_expression_test.cc.o.d"
  "/root/repo/tests/proxy_test.cc" "tests/CMakeFiles/sep2p_tests.dir/proxy_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/proxy_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/sep2p_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/rate_limiter_test.cc" "tests/CMakeFiles/sep2p_tests.dir/rate_limiter_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/rate_limiter_test.cc.o.d"
  "/root/repo/tests/region_test.cc" "tests/CMakeFiles/sep2p_tests.dir/region_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/region_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/sep2p_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/selection_properties_test.cc" "tests/CMakeFiles/sep2p_tests.dir/selection_properties_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/selection_properties_test.cc.o.d"
  "/root/repo/tests/selection_test.cc" "tests/CMakeFiles/sep2p_tests.dir/selection_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/selection_test.cc.o.d"
  "/root/repo/tests/sensing_test.cc" "tests/CMakeFiles/sep2p_tests.dir/sensing_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/sensing_test.cc.o.d"
  "/root/repo/tests/sha256_test.cc" "tests/CMakeFiles/sep2p_tests.dir/sha256_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/sha256_test.cc.o.d"
  "/root/repo/tests/shamir_test.cc" "tests/CMakeFiles/sep2p_tests.dir/shamir_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/shamir_test.cc.o.d"
  "/root/repo/tests/signature_test.cc" "tests/CMakeFiles/sep2p_tests.dir/signature_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/signature_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/sep2p_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/strategies_test.cc" "tests/CMakeFiles/sep2p_tests.dir/strategies_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/strategies_test.cc.o.d"
  "/root/repo/tests/verification_test.cc" "tests/CMakeFiles/sep2p_tests.dir/verification_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/verification_test.cc.o.d"
  "/root/repo/tests/vrand_test.cc" "tests/CMakeFiles/sep2p_tests.dir/vrand_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/vrand_test.cc.o.d"
  "/root/repo/tests/wire_test.cc" "tests/CMakeFiles/sep2p_tests.dir/wire_test.cc.o" "gcc" "tests/CMakeFiles/sep2p_tests.dir/wire_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sep2p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
